//! Offline shim for `rand`.
//!
//! Implements the subset the workload generators use: a seeded
//! [`rngs::StdRng`] and [`Rng::gen_range`] over primitive integer and float
//! ranges. The generator is splitmix64 — not the real StdRng (ChaCha), so
//! absolute streams differ from upstream `rand`, but all in-repo reference
//! outputs are produced through this same shim, so determinism per seed is
//! what matters and is preserved.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface implemented by all generators.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        SampleRange::sample(range, self)
    }
}

/// Ranges that can be sampled uniformly. Mirrors `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 random bits → uniform in [0, 1), scaled into the range.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The shim's standard generator: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo_seen = f32::MAX;
        let mut hi_seen = f32::MIN;
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            lo_seen = lo_seen.min(v);
            hi_seen = hi_seen.max(v);
        }
        // Uniformity smoke check: both halves of the range get hit.
        assert!(lo_seen < -0.5 && hi_seen > 0.5);
    }
}
