//! Dense matrix multiplication with the paper's two-line 2-D block
//! decomposition (§2):
//!
//! ```python
//! zipped_AB = outerproduct(rows(A), rows(BT))
//! AB = [dot(u, v) for (u, v) in par(zipped_AB)]
//! ```
//!
//! Run with: `cargo run --example matmul`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triolet::prelude::*;
use triolet::Array2;
use triolet_iter::RowRef;

fn main() {
    let n = 96;
    let mut rng = StdRng::seed_from_u64(12);
    let a = Array2::from_fn(n, n, |_, _| rng.gen_range(-1.0f64..1.0));
    let b = Array2::from_fn(n, n, |_, _| rng.gen_range(-1.0f64..1.0));

    let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 4));

    // Transpose B over shared memory (localpar): too little work per byte
    // to ship anywhere.
    let b_shared = b.to_shared();
    let bt = rt
        .build_array2(
            range2d(n, n).map(move |(j, i): (usize, usize)| b_shared[i * n + j]).localpar(),
        )
        .value;

    // The two-liner: each output block's node receives only the A rows and
    // B^T rows covering the block.
    let zipped_ab = outerproduct(rows(&a), rows(&bt)).par();
    let run = rt.build_array2(zipped_ab.map(|(u, v): (RowRef<f64>, RowRef<f64>)| {
        u.as_slice().iter().zip(v.as_slice()).map(|(x, y)| x * y).sum::<f64>()
    }));
    let (c, stats) = (run.value, run.stats);

    // Verify one entry against a naive computation.
    let check: f64 = (0..n).map(|k| a[(7, k)] * b[(k, 11)]).sum();
    println!("C[7,11] = {:.6} (naive {:.6})", c[(7, 11)], check);
    assert!((c[(7, 11)] - check).abs() < 1e-9);

    let full_matrix_bytes = (n * n * 8) as u64;
    println!(
        "shipped {} KiB for two {}x{} inputs ({} KiB each): block slicing beats full copies",
        stats.bytes_out / 1024,
        n,
        n,
        full_matrix_bytes / 1024
    );
    println!("matmul OK");
}
