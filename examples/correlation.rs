//! Angular correlation histograms in the style of the paper's Figure 6
//! (tpacf): triangular pair loops via `zip` + `concat_map`, fused into
//! histograms, parallel across datasets.
//!
//! Run with: `cargo run --example correlation`

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triolet::prelude::*;
use triolet::CountHist;
use triolet_iter::StepFlat;

type Point = (f64, f64, f64);

fn unit_points(rng: &mut StdRng, n: usize) -> Vec<Point> {
    (0..n)
        .map(|_| loop {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            let s = a * a + b * b;
            if s < 1.0 {
                let t = 2.0 * (1.0 - s).sqrt();
                break (a * t, b * t, 1.0 - 2.0 * s);
            }
        })
        .collect()
}

/// Bin by cos(theta) into `bins` uniform buckets over [-1, 1].
fn score(bins: usize, u: Point, v: Point) -> usize {
    let dot = (u.0 * v.0 + u.1 * v.1 + u.2 * v.2).clamp(-1.0, 1.0);
    (((dot + 1.0) / 2.0) * bins as f64).min(bins as f64 - 1.0) as usize
}

/// correlation(size, pairs) of Figure 6: histogram the scored pairs.
fn self_correlation(bins: usize, set: &[Point]) -> CountHist {
    let data = Arc::new(set.to_vec());
    let inner = Arc::clone(&data);
    let pairs = zip(range(data.len()), from_vec(set.to_vec()))
        .concat_map(move |(i, u): (usize, Point)| {
            let set = Arc::clone(&inner);
            StepFlat::new((i + 1..set.len()).map(move |j| (u, set[j])))
        })
        .map(move |(u, v): (Point, Point)| score(bins, u, v));
    let mut h = CountHist::new(bins);
    pairs.collect_into(&mut h);
    h
}

fn main() {
    let bins = 12;
    let n = 200;
    let n_sets = 8;
    let mut rng = StdRng::seed_from_u64(3);
    let sets: Vec<Vec<Point>> = (0..n_sets).map(|_| unit_points(&mut rng, n)).collect();

    let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 2));

    // randomSetsCorrelation: par over datasets, each computing its own
    // triangular self-correlation, histograms merged up the tree.
    let run = rt.fold_reduce(
        from_vec(sets).par(),
        &(),
        move || CountHist::new(bins),
        move |(), mut h: CountHist, set: Vec<Point>| {
            h.merge(self_correlation(bins, &set));
            h
        },
        |mut a, b| {
            a.merge(b);
            a
        },
    );
    let (hist, stats) = (run.value, run.stats);

    let total: u64 = hist.bins().iter().sum();
    let expect = (n_sets * n * (n - 1) / 2) as u64;
    println!("pair histogram: {:?}", hist.bins());
    println!("total pairs  : {total} (expected {expect})");
    println!("bytes shipped: {} KiB", stats.bytes_out / 1024);
    assert_eq!(total, expect);
    println!("correlation OK");
}
