//! A cutoff potential grid in the style of cutcp (§4.5): the irregular
//! `concat_map` + `filter` nest scatter-adding into a 3-D grid — the
//! paper's "floating-point histogram".
//!
//! Run with: `cargo run --example potential_grid`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triolet::prelude::*;
use triolet_iter::StepFlat;

fn main() {
    let dim = 16usize;
    let h = 0.5f32;
    let cutoff = 1.5f32;
    let c2 = cutoff * cutoff;
    let dom = Dim3::new(dim, dim, dim);
    let extent = dim as f32 * h;

    let mut rng = StdRng::seed_from_u64(21);
    let atoms: Vec<(f32, f32, f32, f32)> = (0..500)
        .map(|_| {
            (
                rng.gen_range(0.0..extent),
                rng.gen_range(0.0..extent),
                rng.gen_range(0.0..extent),
                rng.gen_range(-1.0f32..1.0),
            )
        })
        .collect();

    let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 4));

    // The §1 comprehension: floatHist [f a r | a <- atoms, r <- gridPts a].
    let contributions = from_vec(atoms.clone())
        .par()
        .concat_map(move |(x, y, z, q): (f32, f32, f32, f32)| {
            // gridPts: all cells in the atom's bounding box.
            let lo = |p: f32| ((p - cutoff) / h).floor().max(0.0) as usize;
            let hi = |p: f32| (((p + cutoff) / h).ceil() as usize).min(dim - 1);
            let (x0, x1, y0, y1, z0, z1) = (lo(x), hi(x), lo(y), hi(y), lo(z), hi(z));
            let mut cells = Vec::new();
            for ix in x0..=x1 {
                for iy in y0..=y1 {
                    for iz in z0..=z1 {
                        let dx = ix as f32 * h - x;
                        let dy = iy as f32 * h - y;
                        let dz = iz as f32 * h - z;
                        cells.push((dom.linear_of((ix, iy, iz)), dx * dx + dy * dy + dz * dz, q));
                    }
                }
            }
            StepFlat::new(cells.into_iter())
        })
        .filter(move |&(_, r2, _): &(usize, f32, f32)| r2 <= c2 && r2 > 0.0)
        .map(move |(cell, r2, q): (usize, f32, f32)| {
            let r = (r2 as f64).sqrt();
            let t = 1.0 - r2 as f64 / c2 as f64;
            (cell, q as f64 * (1.0 / r) * t * t)
        });

    let run = rt.scatter_add(dom.count(), contributions);
    let (grid, stats) = (run.value, run.stats);

    let nonzero = grid.iter().filter(|v| v.abs() > 1e-12).count();
    let peak = grid.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
    println!("grid cells   : {} ({} non-zero)", grid.len(), nonzero);
    println!("peak |V|     : {peak:.4}");
    println!(
        "traffic      : {} KiB out, {} KiB back (per-node grids dominate)",
        stats.bytes_out / 1024,
        stats.bytes_back / 1024
    );
    assert!(nonzero > 0);
    assert!(stats.bytes_back > stats.bytes_out);
    println!("potential_grid OK");
}
