//! MRI image reconstruction in the style of mri-q (§4.2): a parallel map
//! over pixels with an inner reduction over k-space samples, the samples
//! broadcast to every node.
//!
//! Run with: `cargo run --example mri_reconstruction`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triolet::prelude::*;

fn main() {
    let num_pixels = 4096;
    let num_samples = 256;
    let mut rng = StdRng::seed_from_u64(8);
    let mut coords = |n: usize, scale: f32| -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0) * scale).collect()
    };
    let (x, y, z) = (coords(num_pixels, 1.0), coords(num_pixels, 1.0), coords(num_pixels, 1.0));
    let (kx, ky, kz) =
        (coords(num_samples, 4.0), coords(num_samples, 4.0), coords(num_samples, 4.0));
    let phi_mag: Vec<f32> = (0..num_samples).map(|i| 1.0 + (i % 7) as f32 * 0.1).collect();

    // Bundle the samples as the broadcast environment.
    let samples: Vec<(f32, f32, f32, f32)> =
        (0..num_samples).map(|k| (kx[k], ky[k], kz[k], phi_mag[k])).collect();

    let rt = Triolet::new(ClusterConfig::virtual_cluster(8, 2));

    // [sum(ftcoeff(k, r) for k in ks) for r in par(zip3(x, y, z))]
    let pixels = zip3(from_vec(x), from_vec(y), from_vec(z)).par();
    let run = rt.build_vec(
        pixels,
        &samples,
        |samples: &Vec<(f32, f32, f32, f32)>, (x, y, z): (f32, f32, f32)| {
            let mut qr = 0.0f32;
            let mut qi = 0.0f32;
            for &(kx, ky, kz, mag) in samples {
                let arg = 2.0 * std::f32::consts::PI * (kx * x + ky * y + kz * z);
                qr += mag * arg.cos();
                qi += mag * arg.sin();
            }
            (qr, qi)
        },
    );
    let (q, stats) = (run.value, run.stats);

    let energy: f64 = q.iter().map(|&(r, i)| (r as f64).powi(2) + (i as f64).powi(2)).sum();
    println!("pixels       : {}", q.len());
    println!("image energy : {energy:.2}");
    println!(
        "traffic      : {} KiB out ({} nodes each got the {}-sample broadcast)",
        stats.bytes_out / 1024,
        rt.nodes(),
        num_samples
    );
    assert_eq!(q.len(), num_pixels);
    assert!(energy > 0.0);
    println!("mri_reconstruction OK");
}
