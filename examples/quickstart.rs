//! Quickstart: the paper's §2 dot product, plus a tour of the skeletons.
//!
//! Run with: `cargo run --example quickstart`

use triolet::prelude::*;

fn main() {
    // A virtual cluster: 4 nodes x 4 threads (shape of the paper's testbed,
    // scaled down). Virtual mode models timing; results are exact.
    let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 4));
    println!("cluster: {} nodes x {} threads", rt.nodes(), rt.threads_per_node());

    // ---- The paper's dot product --------------------------------------
    // def dot(xs, ys): return sum(x*y for (x, y) in par(zip(xs, ys)))
    let xs: Vec<f64> = (0..100_000).map(|i| (i % 100) as f64 * 0.01).collect();
    let ys: Vec<f64> = (0..100_000).map(|i| (i % 17) as f64 * 0.1).collect();
    let run = rt
        .sum(zip(from_vec(xs.clone()), from_vec(ys.clone())).map(|(x, y): (f64, f64)| x * y).par());
    let (dot, stats) = (run.value, run.stats);
    let expect: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    println!("dot       = {dot:.3} (expected {expect:.3})");
    println!(
        "  shipped {} KiB to nodes, {} KiB back, {} messages",
        stats.bytes_out / 1024,
        stats.bytes_back / 1024,
        stats.messages
    );
    assert!((dot - expect).abs() < 1e-6 * expect.abs());

    // ---- Irregular loops stay parallel ---------------------------------
    // count of filter: the outer loop still partitions across nodes even
    // though each element yields 0 or 1 outputs.
    let positives =
        rt.count(from_vec(xs.clone()).map(|x: f64| x - 0.3).filter(|v: &f64| *v > 0.0).par()).value;
    println!("positives = {positives}");

    // ---- Histogramming --------------------------------------------------
    // A distributed histogram: private per thread, merged per node, summed
    // at the root.
    let hist =
        rt.histogram(10, from_vec(ys).map(|y: f64| ((y * 6.25) as usize).min(9)).par()).value;
    println!("histogram = {hist:?}");
    assert_eq!(hist.iter().sum::<u64>(), 100_000);

    // ---- localpar: shared-memory only ----------------------------------
    let local = rt.sum(from_vec(xs).map(|x: f64| x * 2.0).localpar());
    let (sum_local, local_stats) = (local.value, local.stats);
    println!("localpar sum = {sum_local:.3} (0 bytes shipped: {})", local_stats.bytes_out);
    assert_eq!(local_stats.bytes_out, 0);

    println!("quickstart OK");
}
