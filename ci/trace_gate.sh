#!/usr/bin/env bash
# Run a triolet-apps binary with --trace-out and validate the exported
# chrome://tracing JSON with trace_check — the one observability gate every
# CI job shares instead of six copy-pasted run-then-check blocks.
#
# Usage:
#   ci/trace_gate.sh <bin> [app args...] -- <trace_check args...>
#
# Everything before `--` is passed to the app binary (the script appends
# --trace-out itself); everything after it is passed to trace_check after
# the trace path, so required spans, `--events NAME...`, and
# `--tagged SPAN KEY...` all work unchanged.
set -euo pipefail

usage() {
  echo "usage: $0 <bin> [app args...] -- <trace_check args...>" >&2
  exit 2
}

[[ $# -ge 3 ]] || usage
BIN=$1
shift

APP_ARGS=()
while [[ $# -gt 0 && $1 != "--" ]]; do
  APP_ARGS+=("$1")
  shift
done
[[ $# -gt 0 ]] || { echo "trace_gate: missing '--' separator" >&2; usage; }
shift

TRACE="${BIN}.gate.trace.json"
cargo run --offline --release -p triolet-apps --bin "$BIN" -- \
  "${APP_ARGS[@]}" --trace-out "$TRACE"
cargo run --offline --release -p triolet-obs --bin trace_check -- "$TRACE" "$@"
