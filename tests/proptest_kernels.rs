//! Property-based gate for the tiled node kernels: for random shapes
//! (including tile remainders), random cluster shapes, either pipeline mode,
//! and seeded fault schedules, the register-blocked tiled kernels must be
//! **bit-identical** to the naive reference loops — the tiling only reorders
//! the i/j traversal, never the per-element ascending-k accumulation chain
//! (sgemm) or the set of scored pairs (tpacf).

use std::time::Duration;

use proptest::prelude::*;
use triolet::prelude::*;
use triolet_apps::sgemm::{self, gemm_naive, gemm_tiled};
use triolet_apps::tpacf::{
    self, cross_correlation, cross_correlation_tiled, self_correlation, self_correlation_tiled,
};
use triolet_baselines::LowLevelRt;

fn cluster_shapes() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=6, 1usize..=4)
}

fn fault_plans() -> impl Strategy<Value = Option<u64>> {
    proptest::option::of(0u64..1000)
}

fn config(nodes: usize, tpn: usize, sel: u64, faults: &Option<u64>) -> ClusterConfig {
    let pipeline = if sel & 1 == 0 { PipelineMode::Barrier } else { PipelineMode::Streamed };
    let mut cfg = ClusterConfig::virtual_cluster(nodes, tpn).with_pipeline(pipeline);
    if let Some(seed) = faults {
        cfg = cfg.with_faults(
            FaultPlan::seeded(*seed).with_drop(0.12).with_timeout(Duration::from_millis(1)),
        );
    }
    cfg
}

fn assert_f32_bits(a: &[f32], b: &[f32]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "element {}: {} vs {}", i, x, y);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kernel-level: tiled == naive to the bit on arbitrary shapes,
    /// including shapes smaller than one tile and remainder fringes.
    #[test]
    fn gemm_tiled_is_bit_identical_to_naive(
        rows in 0usize..48,
        cols in 0usize..48,
        k in 0usize..24,
        seed in 0u64..1000,
        alpha in -2.0f32..2.0,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..rows * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let bt: Vec<f32> = (0..cols * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let naive = gemm_naive(&a, &bt, k, rows, cols, alpha);
        let tiled = gemm_tiled(&a, &bt, k, rows, cols, alpha);
        assert_f32_bits(&naive, &tiled)?;
    }

    /// Distributed sgemm: the tiled strip-level two-liner and the tiled
    /// low-level decomposition both reproduce the sequential result to the
    /// bit across cluster shapes, pipeline modes, and fault schedules.
    #[test]
    fn distributed_sgemm_tiled_is_bit_identical(
        m in 1usize..40,
        k in 1usize..20,
        n in 1usize..40,
        seed in 0u64..1000,
        (nodes, tpn) in cluster_shapes(),
        sel in 0u64..2,
        faults in fault_plans(),
    ) {
        let input = sgemm::generate_rect(m, k, n, seed);
        let expect = sgemm::run_seq(&input);

        let rt = Triolet::new(config(nodes, tpn, sel, &faults));
        let got = sgemm::run_triolet_tiled(&rt, &input).value;
        assert_f32_bits(expect.as_slice(), got.as_slice())?;

        let ll = LowLevelRt::new(config(nodes, tpn, sel, &faults));
        let (got, _) = sgemm::run_lowlevel(&ll, &input);
        assert_f32_bits(expect.as_slice(), got.as_slice())?;
    }

    /// Kernel-level tpacf: the tiled correlation loops score exactly the
    /// same pair multiset, so histograms match exactly.
    #[test]
    fn tpacf_tiled_loops_match_naive(
        n in 0usize..80,
        bins in 2usize..24,
        seed in 0u64..1000,
    ) {
        let input = tpacf::generate(n, 1, bins, seed);
        let len = tpacf::hist_len(&input);

        let (mut a, mut b) = (vec![0u64; len], vec![0u64; len]);
        self_correlation(&input.bin_edges, &input.obs, &mut a);
        self_correlation_tiled(&input.bin_edges, &input.obs, &mut b);
        prop_assert_eq!(a, b);

        let (mut a, mut b) = (vec![0u64; len], vec![0u64; len]);
        cross_correlation(&input.bin_edges, &input.obs, &input.rands[0], &mut a);
        cross_correlation_tiled(&input.bin_edges, &input.obs, &input.rands[0], &mut b);
        prop_assert_eq!(a, b);
    }

    /// Distributed tpacf: tiled skeleton and tiled low-level runs equal the
    /// sequential histograms exactly across shapes, modes, and faults.
    #[test]
    fn distributed_tpacf_tiled_matches_seq(
        n in 1usize..50,
        n_rand in 0usize..4,
        seed in 0u64..1000,
        (nodes, tpn) in cluster_shapes(),
        sel in 0u64..2,
        faults in fault_plans(),
    ) {
        let input = tpacf::generate(n, n_rand, 12, seed);
        let expect = tpacf::run_seq(&input);

        let rt = Triolet::new(config(nodes, tpn, sel, &faults));
        let run = tpacf::run_triolet_tiled(&rt, &input);
        prop_assert_eq!(&expect, &run.value);

        let ll = LowLevelRt::new(config(nodes, tpn, sel, &faults));
        let (got, _) = tpacf::run_lowlevel(&ll, &input);
        prop_assert_eq!(&expect, &got);
    }
}
