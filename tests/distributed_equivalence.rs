//! Cross-implementation, cross-configuration equivalence: every benchmark
//! must produce the same answer in every programming model, on every cluster
//! shape, in both execution modes. This is the correctness backbone of the
//! reproduction — the paper's comparisons are only meaningful because all
//! three versions compute the same thing.

use triolet::prelude::*;
use triolet_apps::{cutcp, mriq, sgemm, tpacf};
use triolet_baselines::{EdenRt, LowLevelRt};

const SHAPES: &[(usize, usize)] = &[(1, 1), (1, 4), (2, 2), (4, 2), (8, 16)];

#[test]
fn mriq_equivalent_across_shapes_and_models() {
    let input = mriq::generate(96, 48, 11);
    let expect = mriq::run_seq(&input);
    for &(nodes, tpn) in SHAPES {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let got = mriq::run_triolet(&rt, &input);
        assert!(mriq::validate(&expect, &got.value, 1e-4), "triolet {nodes}x{tpn}");

        let ll = LowLevelRt::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let (got, _) = mriq::run_lowlevel(&ll, &input);
        assert!(mriq::validate(&expect, &got, 1e-4), "lowlevel {nodes}x{tpn}");

        let eden = EdenRt::new(nodes, tpn);
        let (got, _) = mriq::run_eden(&eden, &input).expect("fits buffers");
        assert!(mriq::validate(&expect, &got, 1e-3), "eden {nodes}x{tpn}");
    }
}

#[test]
fn sgemm_equivalent_across_shapes_and_models() {
    let input = sgemm::generate(32, 22);
    let expect = sgemm::run_seq(&input);
    for &(nodes, tpn) in SHAPES {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let got = sgemm::run_triolet(&rt, &input);
        assert!(sgemm::validate(&expect, &got.value, 1e-4), "triolet {nodes}x{tpn}");

        let ll = LowLevelRt::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let (got, _) = sgemm::run_lowlevel(&ll, &input);
        assert!(sgemm::validate(&expect, &got, 1e-4), "lowlevel {nodes}x{tpn}");
    }
    // Eden only runs on one node at this size class (buffer limit).
    let eden = EdenRt::new(1, 8);
    let (got, _) = sgemm::run_eden(&eden, &input).expect("single node");
    assert!(sgemm::validate(&expect, &got, 1e-4), "eden 1x8");
}

#[test]
fn tpacf_equivalent_across_shapes_and_models() {
    let input = tpacf::generate(48, 5, 16, 33);
    let expect = tpacf::run_seq(&input);
    for &(nodes, tpn) in SHAPES {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let got = tpacf::run_triolet(&rt, &input);
        assert!(tpacf::validate(&expect, &got.value), "triolet {nodes}x{tpn}");

        let ll = LowLevelRt::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let (got, _) = tpacf::run_lowlevel(&ll, &input);
        assert!(tpacf::validate(&expect, &got), "lowlevel {nodes}x{tpn}");

        let eden = EdenRt::new(nodes, tpn);
        let (got, _) = tpacf::run_eden(&eden, &input).expect("fits buffers");
        assert!(tpacf::validate(&expect, &got), "eden {nodes}x{tpn}");
    }
}

#[test]
fn cutcp_equivalent_across_shapes_and_models() {
    let input = cutcp::generate(80, 10, 77);
    let expect = cutcp::run_seq(&input);
    for &(nodes, tpn) in SHAPES {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let got = cutcp::run_triolet(&rt, &input);
        assert!(cutcp::validate(&expect, &got.value, 1e-9), "triolet {nodes}x{tpn}");

        let ll = LowLevelRt::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let (got, _) = cutcp::run_lowlevel(&ll, &input);
        assert!(cutcp::validate(&expect, &got, 1e-9), "lowlevel {nodes}x{tpn}");

        let eden = EdenRt::new(nodes, tpn);
        let (got, _) = cutcp::run_eden(&eden, &input).expect("fits buffers");
        assert!(cutcp::validate(&expect, &got, 1e-9), "eden {nodes}x{tpn}");
    }
}

#[test]
fn measured_mode_equivalence_small_shapes() {
    // Real threads (Measured mode): same answers as virtual mode.
    let mriq_in = mriq::generate(48, 24, 4);
    let expect = mriq::run_seq(&mriq_in);
    let rt = Triolet::new(ClusterConfig::measured(2, 2));
    let got = mriq::run_triolet(&rt, &mriq_in);
    assert!(mriq::validate(&expect, &got.value, 1e-4));

    let tpacf_in = tpacf::generate(32, 3, 12, 5);
    let expect = tpacf::run_seq(&tpacf_in);
    let rt = Triolet::new(ClusterConfig::measured(2, 2));
    let got = tpacf::run_triolet(&rt, &tpacf_in);
    assert!(tpacf::validate(&expect, &got.value));
}

#[test]
fn traffic_accounting_is_consistent() {
    // Cluster-level stats must agree with the per-run stats.
    let input = mriq::generate(64, 32, 9);
    let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 2));
    let before = rt.cluster().stats().bytes();
    let stats = mriq::run_triolet(&rt, &input).stats;
    let after = rt.cluster().stats().bytes();
    assert_eq!(after - before, stats.bytes_out + stats.bytes_back);
}
