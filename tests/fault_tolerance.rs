//! End-to-end fault tolerance: every skeleton entry point must return
//! results bit-identical to a fault-free run while a seeded fault plan
//! drops a double-digit percentage of messages and crashes a whole rank —
//! and the recovery work (retransmissions, task redispatches) must be
//! visible in the returned [`RunStats`].
//!
//! This is the CI gate for the failure model: the schedule is seeded, so
//! the exact same faults replay on every run on every machine.

use std::time::Duration;

use triolet::prelude::*;

const NODES: usize = 4;
const TPN: usize = 2;
/// The rank whose payloads must be redispatched to survivors.
const DEAD_RANK: usize = 1;

/// The gate's schedule: ~15% of transmission attempts lost, rank 1 down
/// for the whole run. Short detection timeout keeps the modeled makespan
/// small; it changes no routing decision (those hash only the seed and the
/// attempt coordinates).
fn gate_plan() -> FaultPlan {
    FaultPlan::seeded(2024)
        .with_drop(0.15)
        .with_crash(DEAD_RANK)
        .with_timeout(Duration::from_millis(1))
}

fn clean_rt() -> Triolet {
    Triolet::new(ClusterConfig::virtual_cluster(NODES, TPN))
}

fn faulty_rt() -> Triolet {
    Triolet::new(ClusterConfig::virtual_cluster(NODES, TPN).with_faults(gate_plan()))
}

/// Every fault-injected run must show actual recovery work in its stats.
fn assert_recovered(stats: &RunStats) {
    assert!(
        stats.retries > 0,
        "a 15% drop rate plus a crashed rank must force retransmissions, got {stats:?}"
    );
    assert!(
        stats.redispatches > 0,
        "rank {DEAD_RANK}'s tasks must move to survivors, got {stats:?}"
    );
}

#[test]
fn fold_reduce_is_exact_under_faults() {
    let xs: Vec<i64> = (0..4096).map(|i| (i * 37) % 1001 - 500).collect();
    let clean = clean_rt().fold_reduce(
        from_vec(xs.clone()).par(),
        &(),
        || 0i64,
        |(), acc, x| acc + x,
        |a, b| a + b,
    );
    let faulty = faulty_rt().fold_reduce(
        from_vec(xs).par(),
        &(),
        || 0i64,
        |(), acc, x| acc + x,
        |a, b| a + b,
    );
    assert_eq!(clean.value, faulty.value, "fold_reduce result changed under faults");
    assert_eq!(clean.stats.retries, 0);
    assert_eq!(clean.stats.redispatches, 0);
    assert_recovered(&faulty.stats);
    assert!(
        faulty.stats.messages > clean.stats.messages,
        "lost and retransmitted attempts must show up in the message count"
    );
    assert!(faulty.stats.comm_s > clean.stats.comm_s, "faults must cost modeled time");
}

#[test]
fn collect_is_bit_identical_under_faults() {
    // Floating-point scatter-add: bit-identity (not approximate equality)
    // holds because recovery changes *where* tasks run, never the order
    // partials merge in.
    let xs: Vec<(usize, f64)> = (0..3000).map(|i| (i % 97, (i as f64) * 0.125 + 0.3)).collect();
    let run = |rt: &Triolet| rt.collect(from_vec(xs.clone()).par(), &(), || WeightHist::new(97));
    let clean = run(&clean_rt());
    let faulty = run(&faulty_rt());
    let clean_bits: Vec<u64> = clean.value.iter().map(|w| w.to_bits()).collect();
    let faulty_bits: Vec<u64> = faulty.value.iter().map(|w| w.to_bits()).collect();
    assert_eq!(clean_bits, faulty_bits, "collect must be bit-identical under faults");
    assert_recovered(&faulty.stats);
}

#[test]
fn histogram_is_exact_under_faults() {
    let xs: Vec<usize> = (0..5000).map(|i| (i * i + 13) % 64).collect();
    let clean = clean_rt().histogram(64, from_vec(xs.clone()).par());
    let faulty = faulty_rt().histogram(64, from_vec(xs).par());
    assert_eq!(clean.value, faulty.value, "histogram counts changed under faults");
    assert_eq!(clean.value.iter().sum::<u64>(), 5000);
    assert_recovered(&faulty.stats);
}

#[test]
fn build_vec_preserves_order_under_faults() {
    // Order preservation is the hard case: a redispatched fragment is
    // computed on the "wrong" rank but must still land in its own slot.
    let xs: Vec<u32> = (0..2048).map(|i| (i * 2654435761u64 % 100_000) as u32).collect();
    let clean =
        clean_rt().build_vec(from_vec(xs.clone()).map(|x: u32| x as u64 * 3).par(), &(), |_, x| x);
    let faulty =
        faulty_rt().build_vec(from_vec(xs).map(|x: u32| x as u64 * 3).par(), &(), |_, x| x);
    assert_eq!(clean.value, faulty.value, "build_vec order or contents changed under faults");
    assert_recovered(&faulty.stats);
}

#[test]
fn fault_runs_replay_identically() {
    // Same seed => identical results AND identical recovery accounting.
    let xs: Vec<i64> = (0..1000).collect();
    let run = || {
        faulty_rt().fold_reduce(
            from_vec(xs.clone()).par(),
            &(),
            || 0i64,
            |(), acc, x| acc + x,
            |a, b| a + b,
        )
    };
    let r1 = run();
    let r2 = run();
    assert_eq!(r1.value, r2.value);
    assert_eq!(r1.stats.retries, r2.stats.retries, "the fault schedule must replay exactly");
    assert_eq!(r1.stats.redispatches, r2.stats.redispatches);
    assert_eq!(r1.stats.messages, r2.stats.messages);
}

#[test]
fn measured_mode_recovers_too() {
    // Real threads, same schedule: results still exact, recovery visible.
    let xs: Vec<i64> = (0..2000).map(|i| i % 17 - 8).collect();
    let cfg = ClusterConfig::measured(NODES, TPN).with_faults(gate_plan());
    let clean = Triolet::new(ClusterConfig::measured(NODES, TPN)).fold_reduce(
        from_vec(xs.clone()).par(),
        &(),
        || 0i64,
        |(), acc, x| acc + x,
        |a, b| a + b,
    );
    let faulty = Triolet::new(cfg).fold_reduce(
        from_vec(xs).par(),
        &(),
        || 0i64,
        |(), acc, x| acc + x,
        |a, b| a + b,
    );
    assert_eq!(clean.value, faulty.value);
    assert_recovered(&faulty.stats);
}

#[test]
fn traffic_counters_expose_fault_events() {
    let rt = faulty_rt();
    let xs: Vec<usize> = (0..4000).map(|i| i % 32).collect();
    let stats = rt.histogram(32, from_vec(xs).par()).stats;
    let traffic = rt.cluster().stats();
    assert!(traffic.dropped() > 0, "the schedule must actually drop attempts");
    assert_eq!(traffic.retries(), stats.retries, "RunStats and TrafficStats must agree");
    assert_eq!(traffic.redispatches(), stats.redispatches);
}
