//! Property-based gate for zero-copy POD unpack: for random payloads and
//! random byte offsets — including deliberately misaligned `Bytes` windows
//! that force the copying fallback — a `PodView` unpack must be bit-identical
//! to the copying `Vec` unpack of the same wire bytes.

use proptest::prelude::*;
use triolet_serial::{
    packed, reset_unpack_counters, unpack_counters, PodView, Wire, WireReader, WireWriter,
};

/// Pack `prefix` raw bytes, then the slice, and hand back a reader
/// positioned after the prefix. The prefix shifts the payload window, so the
/// alignment of the aliased slice varies with it.
fn reader_after_prefix<T: Wire + Clone>(prefix: usize, v: &[T]) -> WireReader {
    let mut w = WireWriter::new();
    for i in 0..prefix {
        w.put_u8(i as u8);
    }
    v.to_vec().pack(&mut w);
    let mut r = WireReader::new(w.finish());
    for _ in 0..prefix {
        r.get_u8().expect("prefix byte present");
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// f64 payloads at random window offsets: aliased or copied, the view's
    /// contents are bit-identical to the copying path, and the unpack
    /// counters account for every payload byte exactly once.
    #[test]
    fn podview_f64_matches_copying_path_at_any_offset(
        xs in proptest::collection::vec(-1e30f64..1e30, 0..200),
        prefix in 0usize..16,
    ) {
        let mut r = reader_after_prefix(prefix, &xs);
        reset_unpack_counters();
        let view: PodView<f64> = PodView::unpack(&mut r).expect("payload roundtrip");
        let (copied, aliased) = unpack_counters();

        prop_assert_eq!(view.len(), xs.len());
        for (a, b) in view.as_slice().iter().zip(&xs) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let payload = (xs.len() * 8) as u64;
        prop_assert_eq!(copied + aliased, payload, "every byte copied xor aliased");
        if view.is_aliased() {
            prop_assert_eq!(copied, 0);
        } else {
            prop_assert_eq!(aliased, 0);
        }
    }

    /// Same property for u32 (4-byte alignment) and u8 (always aliasable).
    #[test]
    fn podview_small_pod_matches_copying_path(
        xs in proptest::collection::vec(any::<u32>(), 0..300),
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
        prefix in 0usize..8,
    ) {
        let mut r = reader_after_prefix(prefix, &xs);
        let view: PodView<u32> = PodView::unpack(&mut r).expect("payload roundtrip");
        prop_assert_eq!(view.as_slice(), xs.as_slice());

        let mut r = reader_after_prefix(prefix, &bytes);
        let view: PodView<u8> = PodView::unpack(&mut r).expect("payload roundtrip");
        prop_assert!(view.is_aliased() || bytes.is_empty(), "align-1 windows always alias");
        prop_assert_eq!(view.as_slice(), bytes.as_slice());
    }

    /// Sweeping a full alignment period of window offsets must hit at least
    /// one misaligned window (forcing the copying fallback) for u64 — and
    /// every offset, aligned or not, must decode identical bits. This pins
    /// the fallback path itself, not just whichever branch the allocator's
    /// alignment happens to choose.
    #[test]
    fn offset_sweep_forces_fallback_and_stays_bit_identical(
        xs in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        let mut fallbacks = 0;
        for prefix in 0..8 {
            let mut r = reader_after_prefix(prefix, &xs);
            let view: PodView<u64> = PodView::unpack(&mut r).expect("payload roundtrip");
            if !view.is_aliased() {
                fallbacks += 1;
            }
            prop_assert_eq!(view.as_slice(), xs.as_slice());
            prop_assert_eq!(view.clone().into_vec(), xs.clone());
        }
        prop_assert!(fallbacks >= 7, "at most one offset in 8 can be 8-aligned, got {} fallbacks", fallbacks);
    }

    /// The wire format is unchanged: bytes packed from a `PodView` decode as
    /// a plain `Vec` and vice versa, bit-identically.
    #[test]
    fn podview_and_vec_are_wire_interchangeable(
        xs in proptest::collection::vec(any::<i64>(), 0..200),
    ) {
        let from_vec = packed(&xs);
        let from_view = packed(&PodView::from_vec(xs.clone()));
        prop_assert_eq!(&from_vec, &from_view);

        let as_view: PodView<i64> = triolet_serial::unpack_all(from_vec).expect("roundtrip");
        prop_assert_eq!(as_view.as_slice(), xs.as_slice());
        let as_vec: Vec<i64> = triolet_serial::unpack_all(from_view).expect("roundtrip");
        prop_assert_eq!(as_vec, xs);
    }
}
