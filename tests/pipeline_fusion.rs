//! Fusion semantics across the whole stack: arbitrary compositions of the
//! hybrid-iterator combinators must equal their naive materialized
//! counterparts, both when consumed sequentially and when distributed — and
//! the irregular shapes must stay partitionable.

use std::sync::Arc;

use triolet::prelude::*;
use triolet_iter::sources::zip_seq;
use triolet_iter::StepFlat;

fn rt(nodes: usize, tpn: usize) -> Triolet {
    Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn))
}

#[test]
fn map_filter_map_chain_equals_naive() {
    let xs: Vec<i64> = (0..3000).map(|i| (i * 7919) % 1000 - 500).collect();
    // Naive: materialize every stage.
    let naive: Vec<i64> =
        xs.iter().map(|&x| x * 3).filter(|&v| v % 2 == 0).map(|v| v + 1).collect();
    // Fused pipeline, sequential consumption.
    let fused = from_vec(xs.clone())
        .map(|x: i64| x * 3)
        .filter(|v: &i64| v % 2 == 0)
        .map(|v: i64| v + 1)
        .collect_vec();
    assert_eq!(fused, naive);
    // Fused pipeline, distributed materialization.
    let dist = rt(4, 2).build_vec(
        from_vec(xs).map(|x: i64| x * 3).filter(|v: &i64| v % 2 == 0).map(|v: i64| v + 1).par(),
        &(),
        |_, x| x,
    );
    assert_eq!(dist.value, naive);
}

#[test]
fn concat_map_filter_sum_distributes() {
    let xs: Vec<i64> = (1..200).collect();
    let naive: i64 =
        xs.iter().flat_map(|&x| (0..x % 7).map(move |y| x * y)).filter(|v| v % 3 == 0).sum();
    let it = from_vec(xs)
        .concat_map(|x: i64| StepFlat::new((0..x % 7).map(move |y| x * y)))
        .filter(|v: &i64| v % 3 == 0)
        .par();
    let dist = rt(3, 4).sum(it);
    assert_eq!(dist.value, naive);
}

#[test]
fn nested_concat_maps_three_deep() {
    let naive: Vec<i64> = (0..20i64)
        .flat_map(|a| (0..a % 4).flat_map(move |b| (0..b + 1).map(move |c| a * 100 + b * 10 + c)))
        .collect();
    let it = range(20).map(|a: usize| a as i64).concat_map(|a: i64| {
        StepFlat::new(0..a % 4)
            .concat_map(move |b: i64| StepFlat::new((0..b + 1).map(move |c| a * 100 + b * 10 + c)))
    });
    assert_eq!(it.collect_vec(), naive);
}

#[test]
fn zip_of_mapped_arrays_fuses_and_distributes() {
    let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
    let ys: Vec<f64> = (0..1000).map(|i| (i * 3 % 11) as f64).collect();
    let naive: f64 = xs.iter().zip(&ys).map(|(x, y)| (x + 1.0) * y).sum();
    let it = zip(from_vec(xs), from_vec(ys)).map(|(x, y): (f64, f64)| (x + 1.0) * y).par();
    let dist = rt(4, 4).sum(it);
    assert!((dist.value - naive).abs() < 1e-9 * naive.abs());
}

#[test]
fn zip_seq_handles_irregular_lengths() {
    // Zipping a filtered (variable-length) iterator against a flat one goes
    // through the stepper fallback of Figure 2.
    let evens = range(100).map(|i: usize| i as i64).filter(|x: &i64| x % 2 == 0);
    let flat = range(100).map(|i: usize| i as i64);
    let pairs = zip_seq(evens, flat).collect_vec();
    assert_eq!(pairs.len(), 50);
    assert_eq!(pairs[10], (20, 10));
}

#[test]
fn filter_slicing_respects_part_boundaries() {
    // Slice a filtered iterator by hand and check that each part holds only
    // its share of the data (the distributed engine relies on this).
    let xs: Vec<i64> = (0..100).collect();
    let it = from_vec(xs).filter(|x: &i64| x % 5 == 0);
    let dom = triolet::DistIter::outer_domain(&it);
    let parts = dom.split_parts(4);
    let mut collected = Vec::new();
    for p in &parts {
        let sub = it.slice_outer(p);
        assert!(
            sub.source_bytes() <= it.source_bytes() / 3,
            "slice must shrink the data footprint"
        );
        sub.fold_outer_part(p, (), &mut |(), x| collected.push(x));
    }
    assert_eq!(collected, (0..100).filter(|x| x % 5 == 0).collect::<Vec<i64>>());
}

#[test]
fn shared_captured_state_is_safe_across_nodes() {
    // Arc-captured closure state works under distribution (code ships with
    // its environment; data sources ship as bytes).
    let weights = Arc::new((0..64usize).map(|i| i as f64 * 0.5).collect::<Vec<f64>>());
    let w = Arc::clone(&weights);
    let it = range(64).map(move |i: usize| w[i] * 2.0).par();
    let total = rt(4, 2).sum(it);
    let expect: f64 = weights.iter().map(|x| x * 2.0).sum();
    assert!((total.value - expect).abs() < 1e-9);
}

#[test]
fn collectors_compose_with_engine_and_sequential_paths() {
    let xs: Vec<u32> = (0..5000).map(|i| (i * 2654435761u64 % 97) as u32).collect();
    // Sequential collector drain.
    let mut seq_hist = triolet::CountHist::new(97);
    from_vec(xs.clone()).map(|x: u32| x as usize).collect_into(&mut seq_hist);
    // Distributed histogram.
    let dist = rt(8, 4).histogram(97, from_vec(xs).map(|x: u32| x as usize).par());
    assert_eq!(seq_hist.finish(), dist.value);
}

#[test]
fn hints_are_independent_of_results_for_every_consumer() {
    let xs: Vec<i64> = (0..500).map(|i| (i * 31) % 83 - 40).collect();
    let engine = rt(4, 4);
    let make = || from_vec(xs.clone()).map(|x: i64| x * x).filter(|v: &i64| *v > 100);
    let seq_sum: i64 = make().sum_scalar();
    for hint in [ParHint::Sequential, ParHint::LocalPar, ParHint::Par] {
        let s = engine.sum(make().with_hint(hint));
        assert_eq!(s.value, seq_sum, "hint {hint:?}");
        let c = engine.count(make().with_hint(hint));
        assert_eq!(c.value, make().count_items() as u64, "hint {hint:?}");
    }
}
