//! End-to-end gate for persistent distributed collections:
//!
//! * a skeleton over a resident `DistVec` is bit-identical to the same
//!   skeleton over a re-broadcast iterator;
//! * resident sweeps ship **zero** input bytes — only the environment moves
//!   — and every resident task is accounted as a hit;
//! * a scatter is accounted as segment traffic, never as an env pack;
//! * the iterative k-means ablation moves at least 5x fewer bytes per sweep
//!   over resident segments than re-broadcasting, at 8 and at 16 nodes;
//! * a crashed rank forces resident misses (segment re-ship to a survivor)
//!   without changing a single result bit.

use std::time::Duration;

use triolet::prelude::*;
use triolet_apps::kmeans;

const TPN: usize = 2;

fn rt(nodes: usize) -> Triolet {
    Triolet::new(ClusterConfig::virtual_cluster(nodes, TPN))
}

fn data(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64) * 0.37 - 11.25).collect()
}

fn weighted_sum<In: IntoDistInput<Item = f64>>(rt: &Triolet, input: In) -> Run<f64> {
    rt.fold_reduce(input, &(), || 0.0f64, |(), acc, x: f64| acc + x * 1.0001 - 0.5, |a, b| a + b)
}

#[test]
fn resident_fold_is_bit_identical_to_rebroadcast() {
    let xs = data(4096);
    let rt = rt(8);
    let dv = rt.scatter(xs.clone()).value;
    let resident = weighted_sum(&rt, &dv);
    let rebroadcast = weighted_sum(&rt, from_vec(xs).par());
    assert_eq!(
        resident.value.to_bits(),
        rebroadcast.value.to_bits(),
        "input residency must never change the computed value"
    );
}

#[test]
fn views_agree_with_local_semantics() {
    // Views re-associate the fold at segment boundaries, so f64 results are
    // compared to rounding (the bit-identity guarantee is resident vs
    // re-broadcast over identical boundaries, tested elsewhere).
    let close = |got: f64, expect: f64, what: &str| {
        assert!(
            (got - expect).abs() <= 1e-9 * expect.abs().max(1.0),
            "{what}: got {got}, expected {expect}"
        );
    };
    let xs = data(1000);
    let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
    let rt = rt(4);
    let dx = rt.scatter(xs.clone()).value;
    let dy = rt.scatter(ys.clone()).value;

    // slice: sum over a strict sub-range.
    let s = rt.sum(dx.slice(100..900));
    close(s.value, xs[100..900].iter().sum(), "slice view sum");

    // enumerate: index-weighted sum.
    let e = rt.fold_reduce(
        dx.enumerate(),
        &(),
        || 0.0f64,
        |(), acc, (i, x): (usize, f64)| acc + (i as f64) * x,
        |a, b| a + b,
    );
    let expect = xs.iter().enumerate().fold(0.0, |acc, (i, x)| acc + (i as f64) * x);
    close(e.value, expect, "enumerate view fold");

    // zip: dot product of two resident collections.
    let z = rt.fold_reduce(
        dx.zip(&dy),
        &(),
        || 0.0f64,
        |(), acc, (x, y): (f64, f64)| acc + x * y,
        |a, b| a + b,
    );
    let expect = xs.iter().zip(&ys).fold(0.0, |acc, (x, y)| acc + x * y);
    close(z.value, expect, "zip view fold");

    // to_vec round-trips the scatter.
    assert_eq!(dx.to_vec(), xs);
}

#[test]
fn resident_sweeps_ship_zero_input_bytes() {
    let xs = data(2048);
    let rt = rt(4);
    let dv = rt.scatter(xs).value;
    for sweep in 0..3 {
        let run = weighted_sum(&rt, &dv);
        assert_eq!(
            run.stats.bytes_out, 0,
            "sweep {sweep} over resident segments must ship no input or env bytes"
        );
        assert_eq!(run.stats.resident_hits, dv.segments() as u64);
        assert_eq!(run.stats.resident_misses, 0);
    }
    let traffic = rt.cluster().stats();
    assert_eq!(traffic.resident_hits(), 3 * dv.segments() as u64);
    assert_eq!(traffic.resident_misses(), 0);
}

#[test]
fn scatter_is_segment_traffic_not_an_env_pack() {
    let xs = data(2048);
    let rt = rt(4);
    let scattered = rt.scatter(xs);
    let traffic = rt.cluster().stats();
    assert_eq!(traffic.env_packs(), 0, "a scatter is not an environment pack");
    assert_eq!(
        traffic.seg_scatters(),
        scattered.value.segments() as u64,
        "each shipped segment must be counted exactly once"
    );
    assert!(scattered.stats.bytes_out > 0, "the scatter itself must ship the segments");

    // A subsequent sweep with a real (non-unit) environment packs it once.
    let env: Vec<f64> = (0..32).map(|i| i as f64).collect();
    let run = rt.fold_reduce(
        &scattered.value,
        &env,
        || 0.0f64,
        |env: &Vec<f64>, acc, x: f64| acc + x * env[(x.abs() as usize) % env.len()],
        |a, b| a + b,
    );
    assert!(run.value.is_finite());
    assert_eq!(rt.cluster().stats().env_packs(), 1, "the sweep env packs exactly once");
}

#[test]
fn kmeans_resident_sweeps_move_5x_fewer_bytes() {
    for nodes in [8, 16] {
        let input = kmeans::generate(8192, 8, 4, 11);
        let rt = rt(nodes);
        let resident = kmeans::run_resident(&rt, &input).value;
        let rebroadcast = kmeans::run_rebroadcast(&rt, &input).value;
        assert_eq!(resident.centroids, rebroadcast.centroids);
        assert!(
            rebroadcast.sweep_bytes >= 5 * resident.sweep_bytes.max(1),
            "at {nodes} nodes resident sweeps must move >=5x fewer bytes: \
             resident {}B/iter vs rebroadcast {}B/iter",
            resident.bytes_per_iter(),
            rebroadcast.bytes_per_iter()
        );
    }
}

#[test]
fn crashed_rank_forces_resident_misses_without_changing_bits() {
    let xs = data(4096);
    let clean_rt = rt(4);
    let plan =
        FaultPlan::seeded(2024).with_drop(0.1).with_crash(1).with_timeout(Duration::from_millis(1));
    let faulty_rt = Triolet::new(ClusterConfig::virtual_cluster(4, TPN).with_faults(plan));

    let clean_dv = clean_rt.scatter(xs.clone()).value;
    let faulty_dv = faulty_rt.scatter(xs).value;
    let clean = weighted_sum(&clean_rt, &clean_dv);
    let faulty = weighted_sum(&faulty_rt, &faulty_dv);

    assert_eq!(
        clean.value.to_bits(),
        faulty.value.to_bits(),
        "segment re-shipping must not change the result"
    );
    assert!(
        faulty.stats.resident_misses > 0,
        "rank 1's resident tasks must re-ship their segment: {:?}",
        faulty.stats
    );
    assert!(faulty.stats.redispatches > 0, "the dead rank's tasks must move to survivors");
    assert!(
        faulty.stats.bytes_out > 0,
        "an off-home resident task pays for its segment on the wire"
    );
    assert_eq!(clean.stats.resident_misses, 0);
    assert_eq!(clean.stats.bytes_out, 0);
}
