//! Sanity properties of the virtual-time and traffic models: the modeled
//! quantities must move in the directions the paper's measurements move.

use std::time::Instant;

use triolet::prelude::*;
use triolet_apps::sgemm;
use triolet_baselines::EdenRt;

/// A compute-heavy workload whose per-element cost is real CPU time.
fn busy_value(x: u64) -> u64 {
    let mut acc = x;
    for _ in 0..2_000 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    }
    acc % 1024 // keep sums far from overflow in debug builds
}

#[test]
fn more_cores_never_model_slower_compute() {
    let xs: Vec<u64> = (0..2_000).collect();
    let mut prev = f64::INFINITY;
    for (nodes, tpn) in [(1, 1), (1, 4), (2, 4), (4, 4), (8, 16)] {
        // Per-chunk costs are wall-measured, so take the best of two runs
        // per shape — a shared-tenancy host can steal a scheduling quantum
        // mid-measurement and skew a single run badly.
        let span = (0..2)
            .map(|_| {
                let cfg = ClusterConfig::virtual_cluster(nodes, tpn).with_cost(CostModel::free());
                let rt = Triolet::new(cfg);
                rt.sum(from_vec(xs.clone()).map(busy_value).par()).stats.compute_span_s()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            span <= prev * 1.35,
            "{nodes}x{tpn}: compute span {span} regressed badly from {prev}"
        );
        prev = prev.min(span);
    }
}

#[test]
fn comm_time_scales_with_payload() {
    let slow_net = CostModel::flat(0.0, 1e8);
    let rt = |n: usize| {
        Triolet::new(ClusterConfig::virtual_cluster(2, 1).with_cost(slow_net))
            .sum(from_vec(vec![1u8; n]).map(|x: u8| x as u64).par())
            .stats
            .comm_s
    };
    let small = rt(10_000);
    let large = rt(1_000_000);
    assert!(large > 50.0 * small, "large={large} small={small}");
}

#[test]
fn slicing_beats_full_copy_traffic() {
    // Triolet ships ~1 copy of the input total (each node gets its slice);
    // Eden's default full-copy semantics ship one complete copy per node.
    // The gap is the paper's §3.5 argument in byte counts.
    let data: Vec<f32> = (0..100_000).map(|i| i as f32).collect();
    let rt = Triolet::new(ClusterConfig::virtual_cluster(8, 2));
    let t_stats = rt.sum(from_vec(data.clone()).map(|x: f32| x as f64).par()).stats;

    let eden = EdenRt::new(8, 2).with_msg_limit(usize::MAX);
    let n = data.len();
    let (_, e_stats) = eden
        .map_reduce_full_copy(
            data,
            16,
            move |d, tid| {
                let chunk = n / 16;
                d[tid * chunk..(tid + 1) * chunk].iter().map(|&x| x as f64).sum::<f64>()
            },
            |a, b| a + b,
            || 0.0f64,
        )
        .expect("limit disabled");

    assert!(
        e_stats.bytes_out > 4 * t_stats.bytes_out,
        "eden={} triolet={}",
        e_stats.bytes_out,
        t_stats.bytes_out
    );
}

#[test]
fn sgemm_block_traffic_grows_sublinearly_in_nodes() {
    // With a 2-D block decomposition, going from 4 to 16 nodes doubles (not
    // quadruples) the shipped copies of each matrix: O(sqrt(p)).
    let input = sgemm::generate(64, 8);
    let bytes = |nodes: usize| {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, 1));
        sgemm::run_triolet(&rt, &input).stats.bytes_out as f64
    };
    let b4 = bytes(4);
    let b16 = bytes(16);
    assert!(b16 < 2.6 * b4, "b16={b16} b4={b4}: block slicing must be sublinear");
    assert!(b16 > 1.5 * b4, "more nodes must still cost more than fewer");
}

#[test]
fn virtual_total_includes_comm_and_compute() {
    let net = CostModel::flat(1e-3, 1e9);
    let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 2).with_cost(net));
    let xs: Vec<u64> = (0..500).collect();
    let stats = rt.sum(from_vec(xs).map(busy_value).par()).stats;
    // comm_s is an aggregate over all links; the critical path includes the
    // root's serialized send chain (4 messages) plus one result return.
    assert!(stats.total_s >= stats.compute_span_s());
    assert!(stats.total_s >= 5.0 * 1e-3, "send chain + result return at 1ms each");
    assert!(stats.comm_s >= 8.0 * 1e-3, "8 messages x 1ms latency minimum");
}

#[test]
fn measured_mode_wall_clock_is_plausible() {
    // Measured mode's total must be at least the span of real work done.
    let rt = Triolet::new(ClusterConfig::measured(2, 1));
    let t0 = Instant::now();
    let xs: Vec<u64> = (0..200).collect();
    let stats = rt.sum(from_vec(xs).map(busy_value).par()).stats;
    let wall = t0.elapsed().as_secs_f64();
    assert!(stats.total_s <= wall * 1.5 + 0.01);
    assert!(stats.total_s > 0.0);
}

#[test]
fn eden_straggler_penalty_visible_at_scale() {
    // Same work per node; the 8-node Eden run must carry a visibly larger
    // total/span ratio than the 2-node run (the paper's delayed tasks).
    let work = |v: Vec<u64>| v.into_iter().map(busy_value).fold(0u64, u64::wrapping_add);
    let inputs = |n: usize| (0..n).map(|i| vec![i as u64; 256]).collect::<Vec<_>>();
    let (_, s2) =
        EdenRt::new(2, 1).map_reduce(inputs(2), work, |a, b| a.wrapping_add(b), || 0).unwrap();
    let (_, s8) =
        EdenRt::new(8, 1).map_reduce(inputs(8), work, |a, b| a.wrapping_add(b), || 0).unwrap();
    let rel2 = s2.total_s / s2.compute_span_s();
    let rel8 = s8.total_s / s8.compute_span_s();
    assert!(rel8 > rel2 + 0.05, "rel8={rel8} rel2={rel2}");
}
