//! Property-based tests over the whole stack: for random data, random
//! pipelines parameters, and random cluster shapes, the distributed engine
//! must agree exactly (integers) or to rounding (floats) with the sequential
//! semantics.

use proptest::prelude::*;
use triolet::prelude::*;

fn cluster_shapes() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=8, 1usize..=8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn par_sum_equals_seq_sum(
        xs in proptest::collection::vec(-1000i64..1000, 0..400),
        (nodes, tpn) in cluster_shapes(),
    ) {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let expect: i64 = xs.iter().sum();
        let got = rt.sum(from_vec(xs).par());
        prop_assert_eq!(got.value, expect);
    }

    #[test]
    fn par_filter_count_equals_seq(
        xs in proptest::collection::vec(any::<i32>(), 0..400),
        modulus in 1i32..20,
        (nodes, tpn) in cluster_shapes(),
    ) {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let expect = xs.iter().filter(|&&x| x.rem_euclid(modulus) == 0).count() as u64;
        let got = rt.count(
            from_vec(xs).filter(move |x: &i32| x.rem_euclid(modulus) == 0).par(),
        );
        prop_assert_eq!(got.value, expect);
    }

    #[test]
    fn par_histogram_equals_seq(
        xs in proptest::collection::vec(0usize..50, 0..500),
        (nodes, tpn) in cluster_shapes(),
    ) {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let mut expect = vec![0u64; 50];
        for &x in &xs {
            expect[x] += 1;
        }
        let got = rt.histogram(50, from_vec(xs).par());
        prop_assert_eq!(got.value, expect);
    }

    #[test]
    fn par_build_vec_preserves_order(
        xs in proptest::collection::vec(any::<u32>(), 0..300),
        (nodes, tpn) in cluster_shapes(),
    ) {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let expect: Vec<u64> = xs.iter().map(|&x| x as u64 + 7).collect();
        let got = rt.build_vec(from_vec(xs).map(|x: u32| x as u64 + 7).par(), &(), |_, x| x);
        prop_assert_eq!(got.value, expect);
    }

    #[test]
    fn par_concat_map_sum_equals_seq(
        xs in proptest::collection::vec(0i64..30, 0..120),
        (nodes, tpn) in cluster_shapes(),
    ) {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let expect: i64 = xs.iter().flat_map(|&x| 0..x).sum();
        let it = from_vec(xs)
            .concat_map(|x: i64| triolet::StepFlat::new(0..x))
            .par();
        let got = rt.sum(it);
        prop_assert_eq!(got.value, expect);
    }

    #[test]
    fn par_reduce_min_equals_seq(
        xs in proptest::collection::vec(any::<i64>(), 0..300),
        (nodes, tpn) in cluster_shapes(),
    ) {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let expect = xs.iter().copied().min();
        let got = rt.reduce(from_vec(xs).par(), i64::min);
        prop_assert_eq!(got.value, expect);
    }

    #[test]
    fn build_array2_matches_from_fn(
        rows in 1usize..20,
        cols in 1usize..20,
        (nodes, tpn) in cluster_shapes(),
    ) {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let got = rt.build_array2(
            range2d(rows, cols).map(|(r, c): (usize, usize)| (r * 31 + c) as i64).par(),
        );
        let expect = triolet::Array2::from_fn(rows, cols, |r, c| (r * 31 + c) as i64);
        prop_assert_eq!(got.value, expect);
    }

    #[test]
    fn scatter_add_equals_seq(
        pairs in proptest::collection::vec((0usize..64, -100i32..100), 0..400),
        (nodes, tpn) in cluster_shapes(),
    ) {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let items: Vec<(usize, f64)> =
            pairs.iter().map(|&(b, w)| (b, w as f64)).collect();
        let mut expect = vec![0.0f64; 64];
        for &(b, w) in &items {
            expect[b] += w;
        }
        let got = rt.scatter_add(64, from_vec(items).par());
        for (g, e) in got.value.iter().zip(&expect) {
            prop_assert!((g - e).abs() < 1e-9);
        }
    }
}
