//! End-to-end gate for the pipelined dispatch path: `PipelineMode::Streamed`
//! must change *when* the root packs, unpacks, and merges — never *what* any
//! skeleton returns. Every test here compares a streamed run against the
//! barrier run of the identical workload: values bit-identical, traffic
//! accounting equal, and the streamed makespan no worse on workloads with
//! staggered arrivals.

use std::time::Duration;

use triolet::prelude::*;

const NODES: usize = 6;
const TPN: usize = 2;

fn rt(mode: PipelineMode) -> Triolet {
    Triolet::new(ClusterConfig::virtual_cluster(NODES, TPN).with_pipeline(mode))
}

fn faulty_rt(mode: PipelineMode) -> Triolet {
    let plan = FaultPlan::seeded(4242)
        .with_drop(0.12)
        .with_crash(2)
        .with_timeout(Duration::from_millis(1));
    Triolet::new(ClusterConfig::virtual_cluster(NODES, TPN).with_faults(plan).with_pipeline(mode))
}

/// Traffic must not depend on when the root unpacks.
fn assert_same_traffic(a: &RunStats, b: &RunStats) {
    assert_eq!(a.bytes_out, b.bytes_out);
    assert_eq!(a.bytes_back, b.bytes_back);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.redispatches, b.redispatches);
}

#[test]
fn float_sum_is_bit_identical_across_modes() {
    let xs: Vec<f64> = (0..4096).map(|i| (i as f64) * 0.1 - 200.0).collect();
    let s = rt(PipelineMode::Streamed).sum(from_vec(xs.clone()).par());
    let b = rt(PipelineMode::Barrier).sum(from_vec(xs).par());
    assert_eq!(s.value.to_bits(), b.value.to_bits());
    assert_same_traffic(&s.stats, &b.stats);
}

#[test]
fn non_commutative_fold_is_identical_across_modes() {
    // Vec concatenation: any merge-order deviation scrambles the output.
    let xs: Vec<u32> = (0..2000).collect();
    let run = |mode| {
        rt(mode).fold_reduce(
            from_vec(xs.clone()).par(),
            &(),
            Vec::new,
            |(), mut acc: Vec<u32>, x: u32| {
                acc.push(x.wrapping_mul(2654435761));
                acc
            },
            |mut a, b| {
                a.extend(b);
                a
            },
        )
    };
    let s = run(PipelineMode::Streamed);
    let b = run(PipelineMode::Barrier);
    assert_eq!(s.value, b.value);
    assert_same_traffic(&s.stats, &b.stats);
}

#[test]
fn build_vec_is_identical_across_modes() {
    let xs: Vec<i64> = (0..3000).map(|i| i * 7 - 99).collect();
    let s = rt(PipelineMode::Streamed).build_vec(
        from_vec(xs.clone()).map(|x: i64| x + 1).par(),
        &(),
        |_, x| x,
    );
    let b =
        rt(PipelineMode::Barrier).build_vec(from_vec(xs).map(|x: i64| x + 1).par(), &(), |_, x| x);
    assert_eq!(s.value, b.value);
    assert_same_traffic(&s.stats, &b.stats);
}

#[test]
fn crash_redispatch_mid_stream_is_identical_across_modes() {
    // Rank 2 is dead; its tasks redispatch to survivors mid-stream, but
    // every result must still land in its original rank slot.
    let xs: Vec<f64> = (0..4096).map(|i| ((i * 31) % 977) as f64 * 0.25).collect();
    let s = faulty_rt(PipelineMode::Streamed).sum(from_vec(xs.clone()).par());
    let b = faulty_rt(PipelineMode::Barrier).sum(from_vec(xs.clone()).par());
    let clean = rt(PipelineMode::Streamed).sum(from_vec(xs).par());
    assert_eq!(s.value.to_bits(), b.value.to_bits());
    assert_eq!(s.value.to_bits(), clean.value.to_bits());
    assert!(s.stats.redispatches > 0, "the crashed rank must force redispatch");
    assert_same_traffic(&s.stats, &b.stats);
}

#[test]
fn streamed_makespan_not_worse_on_staggered_workload() {
    // Large per-node partials: the barrier path serializes every
    // unpack+merge after the last arrival, the streamed path hides that
    // work inside the network tail.
    let grid = 32_768usize;
    let xs: Vec<f64> = (0..65_536).map(|i| i as f64).collect();
    let run = |mode| {
        rt(mode).fold_reduce(
            from_vec(xs.clone()).par(),
            &(),
            move || vec![0.0f64; grid],
            |(), mut acc: Vec<f64>, x: f64| {
                let i = (x as usize) % acc.len();
                acc[i] += x;
                acc
            },
            |mut a, b| {
                for (ai, bi) in a.iter_mut().zip(&b) {
                    *ai += bi;
                }
                a
            },
        )
    };
    let s = run(PipelineMode::Streamed);
    let b = run(PipelineMode::Barrier);
    assert_eq!(
        s.value.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        b.value.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    // Wall-measured unpack/merge times jitter badly on a shared-tenancy
    // host (a stolen scheduling quantum mid-measurement skews one run), so
    // compare best-of-two per mode with a small tolerance rather than
    // demanding strict improvement on every run.
    let s_best = s.stats.total_s.min(run(PipelineMode::Streamed).stats.total_s);
    let b_best = b.stats.total_s.min(run(PipelineMode::Barrier).stats.total_s);
    assert!(s_best <= b_best * 1.10, "streamed {s_best} must not be slower than barrier {b_best}");
}

#[test]
fn streamed_trace_has_per_task_pipeline_spans() {
    let xs: Vec<f64> = (0..2048).map(|i| i as f64).collect();
    let cfg = ClusterConfig::virtual_cluster(NODES, TPN)
        .with_trace(true)
        .with_pipeline(PipelineMode::Streamed);
    let run = Triolet::new(cfg).sum(from_vec(xs).par());
    let names = run.trace.span_names();
    assert!(names.contains(&"root:merge:streamed"), "streamed merge spans missing: {names:?}");
    assert!(names.contains(&"root:pack"));
    assert!(names.contains(&"root:unpack"));
    // One pack, one unpack, one merge span per task (span_names dedups,
    // so count raw spans).
    let count = |n: &str| run.trace.spans.iter().filter(|s| s.name == n).count();
    assert_eq!(count("root:pack"), NODES);
    assert_eq!(count("root:unpack"), NODES);
    assert_eq!(count("root:merge:streamed"), NODES);
    assert!(!names.contains(&"root:merge"), "barrier lump merge must not appear: {names:?}");
}

#[test]
fn barrier_trace_keeps_lump_spans() {
    let xs: Vec<f64> = (0..2048).map(|i| i as f64).collect();
    let cfg = ClusterConfig::virtual_cluster(NODES, TPN)
        .with_trace(true)
        .with_pipeline(PipelineMode::Barrier);
    let run = Triolet::new(cfg).sum(from_vec(xs).par());
    let names = run.trace.span_names();
    assert!(names.contains(&"root:merge"));
    assert!(!names.contains(&"root:merge:streamed"));
    let count = |n: &str| run.trace.spans.iter().filter(|s| s.name == n).count();
    assert_eq!(count("root:pack"), 1, "barrier packs in one lump");
    assert_eq!(count("root:unpack"), 1, "barrier unpacks in one lump");
}

#[test]
fn measured_mode_agrees_across_pipeline_modes() {
    let xs: Vec<i64> = (0..3000).map(|i| i * 13 - 7).collect();
    let run = |mode| {
        Triolet::new(ClusterConfig::measured(3, 2).with_pipeline(mode))
            .sum(from_vec(xs.clone()).par())
    };
    let s = run(PipelineMode::Streamed);
    let b = run(PipelineMode::Barrier);
    assert_eq!(s.value, b.value);
    assert_same_traffic(&s.stats, &b.stats);
}
