//! Property-based cross-core equivalence: for random data, cluster shapes,
//! topologies, pipeline modes, and seeded fault plans (including crashes),
//! the discrete-event simulator core must agree with the eager walk on
//! values (bitwise for floats), traffic accounting, and — via the
//! in-dispatch dual-core check, which panics on the first bitwise timeline
//! divergence — makespans and every span bound in between.

use std::time::Duration;

use proptest::prelude::*;
use triolet::prelude::*;

#[derive(Debug, Clone, Copy)]
enum PlanKind {
    None,
    Lossy,
    Crashy,
}

fn plan_for(kind: PlanKind, seed: u64, nodes: usize) -> FaultPlan {
    match kind {
        PlanKind::None => FaultPlan::none(),
        PlanKind::Lossy => FaultPlan::seeded(seed)
            .with_drop(0.2)
            .with_duplication(0.1)
            .with_corruption(0.05)
            .with_timeout(Duration::from_millis(1)),
        PlanKind::Crashy => {
            let plan =
                FaultPlan::seeded(seed).with_drop(0.15).with_timeout(Duration::from_millis(1));
            if nodes >= 2 {
                // Crash a middle rank so its tasks redispatch to survivors.
                plan.with_crash(nodes / 2)
            } else {
                plan
            }
        }
    }
}

fn shapes() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=10, 1usize..=4)
}

/// The shimmed proptest has no `prop_oneof`; pick enums from an integer.
fn topology_from(sel: u64) -> Topology {
    if sel % 2 == 0 {
        Topology::Linear
    } else {
        Topology::Tree
    }
}

fn pipeline_from(sel: u64) -> PipelineMode {
    if sel % 2 == 0 {
        PipelineMode::Barrier
    } else {
        PipelineMode::Streamed
    }
}

fn plan_kind_from(sel: u64) -> PlanKind {
    match sel % 3 {
        0 => PlanKind::None,
        1 => PlanKind::Lossy,
        _ => PlanKind::Crashy,
    }
}

fn runtime(
    nodes: usize,
    tpn: usize,
    topo: Topology,
    pipe: PipelineMode,
    plan: FaultPlan,
    core: SimCore,
) -> Triolet {
    // sim_check runs *both* cores on every dispatch and asserts the
    // timelines agree to the bit, whichever core's result is returned.
    Triolet::new(
        ClusterConfig::virtual_cluster(nodes, tpn)
            .with_topology(topo)
            .with_pipeline(pipe)
            .with_faults(plan)
            .with_sim_core(core)
            .with_sim_check(true),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cores_agree_on_int_folds_and_accounting(
        xs in proptest::collection::vec(-1000i64..1000, 0..600),
        (nodes, tpn) in shapes(),
        topo_sel in 0u64..2,
        pipe_sel in 0u64..2,
        kind_sel in 0u64..3,
        seed in 0u64..1_000,
    ) {
        let (topo, pipe) = (topology_from(topo_sel), pipeline_from(pipe_sel));
        let expect: i64 = xs.iter().sum();
        let plan = plan_for(plan_kind_from(kind_sel), seed, nodes);
        let run = |core: SimCore| {
            let rt = runtime(nodes, tpn, topo, pipe, plan, core);
            rt.fold_reduce(
                from_vec(xs.clone()).par(),
                &(),
                || 0i64,
                |(), a, x| a + x,
                |a, b| a + b,
            )
        };
        let eager = run(SimCore::Eager);
        let event = run(SimCore::Event);
        prop_assert_eq!(eager.value, expect);
        prop_assert_eq!(event.value, expect);
        prop_assert_eq!(eager.stats.messages, event.stats.messages);
        prop_assert_eq!(eager.stats.retries, event.stats.retries);
        prop_assert_eq!(eager.stats.redispatches, event.stats.redispatches);
        prop_assert_eq!(eager.stats.bytes_out, event.stats.bytes_out);
        prop_assert_eq!(eager.stats.bytes_back, event.stats.bytes_back);
        // comm_s has no wall-measured component: bit-comparable across runs.
        prop_assert_eq!(eager.stats.comm_s.to_bits(), event.stats.comm_s.to_bits());
    }

    #[test]
    fn cores_agree_bitwise_on_float_folds(
        xs in proptest::collection::vec(-1.0e6f64..1.0e6, 0..400),
        (nodes, tpn) in shapes(),
        topo_sel in 0u64..2,
        pipe_sel in 0u64..2,
        kind_sel in 0u64..3,
        seed in 0u64..1_000,
    ) {
        let (topo, pipe) = (topology_from(topo_sel), pipeline_from(pipe_sel));
        let plan = plan_for(plan_kind_from(kind_sel), seed, nodes);
        let run = |core: SimCore| {
            let rt = runtime(nodes, tpn, topo, pipe, plan, core);
            rt.fold_reduce(
                from_vec(xs.clone()).par(),
                &(),
                || 0.0f64,
                |(), a, x| a + x,
                |a, b| a + b,
            )
        };
        let eager = run(SimCore::Eager);
        let event = run(SimCore::Event);
        prop_assert_eq!(
            eager.value.to_bits(), event.value.to_bits(),
            "float fold diverged: eager {} vs event {}", eager.value, event.value,
        );
    }

    #[test]
    fn hierarchical_costs_keep_cores_in_lockstep(
        xs in proptest::collection::vec(-500i64..500, 1..400),
        (nodes, tpn) in shapes(),
        ranks_per_rack in 1usize..6,
        kind_sel in 0u64..3,
        seed in 0u64..1_000,
    ) {
        let cost = CostModel::hierarchical(ranks_per_rack, 5e-6, 4.0e9, 5e-5, 1.0e9);
        let plan = plan_for(plan_kind_from(kind_sel), seed, nodes);
        let rt = Triolet::new(
            ClusterConfig::virtual_cluster(nodes, tpn)
                .with_cost(cost)
                .with_faults(plan)
                .with_sim_check(true),
        );
        let run = rt.fold_reduce(
            from_vec(xs.clone()).par(),
            &(),
            || 0i64,
            |(), a, x| a + x,
            |a, b| a + b,
        );
        prop_assert_eq!(run.value, xs.iter().sum::<i64>());
    }
}
