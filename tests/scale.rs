//! The event-driven virtual-time core: cross-core equivalence and scale.
//!
//! Two things are gated here. First, *equivalence*: the discrete-event heap
//! and the eager walk must produce identical skeleton values, identical
//! traffic accounting (bytes, messages, retries, redispatches), and — via
//! [`ClusterConfig::with_sim_check`], which runs both cores on every
//! dispatch and panics on the first bitwise timeline divergence — identical
//! makespans, across topologies, pipeline modes, and seeded fault plans
//! including crashes. Second, *scale*: a 1024-rank fold_reduce must complete
//! in CI-friendly time with the dual-core check asserted throughout, the
//! property the eager per-rank walk could not deliver.

use std::time::Duration;

use triolet::prelude::*;

/// The fault schedules the cross-core gate sweeps: clean, lossy (drops +
/// duplicates + corruption), and lossy with a crashed rank forcing
/// redispatch. Short timeouts keep modeled makespans small without
/// changing any routing decision.
fn plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::none(),
        FaultPlan::seeded(77)
            .with_drop(0.2)
            .with_duplication(0.05)
            .with_corruption(0.05)
            .with_timeout(Duration::from_millis(1)),
        FaultPlan::seeded(99).with_drop(0.15).with_crash(1).with_timeout(Duration::from_millis(1)),
    ]
}

fn sum_ints(rt: &Triolet, xs: &[i64]) -> triolet::Run<i64> {
    rt.fold_reduce(from_vec(xs.to_vec()).par(), &(), || 0i64, |(), a, x| a + x, |a, b| a + b)
}

#[test]
fn cores_agree_on_values_and_accounting() {
    let xs: Vec<i64> = (0..4096).map(|i| (i * 37) % 1001 - 500).collect();
    let expect: i64 = xs.iter().sum();
    for topo in [Topology::Linear, Topology::Tree] {
        for pipe in [PipelineMode::Barrier, PipelineMode::Streamed] {
            for (pi, plan) in plans().into_iter().enumerate() {
                let run = |core: SimCore| {
                    let rt = Triolet::new(
                        ClusterConfig::virtual_cluster(6, 2)
                            .with_topology(topo)
                            .with_pipeline(pipe)
                            .with_faults(plan)
                            .with_sim_core(core),
                    );
                    sum_ints(&rt, &xs)
                };
                let eager = run(SimCore::Eager);
                let event = run(SimCore::Event);
                let tag = format!("{topo:?}/{pipe:?}/plan{pi}");
                assert_eq!(eager.value, expect, "{tag}: eager value");
                assert_eq!(event.value, expect, "{tag}: event value");
                // Accounting is a pure function of the plan and the byte
                // counts — it must match across cores *and* across runs.
                assert_eq!(eager.stats.messages, event.stats.messages, "{tag}: messages");
                assert_eq!(eager.stats.retries, event.stats.retries, "{tag}: retries");
                assert_eq!(
                    eager.stats.redispatches, event.stats.redispatches,
                    "{tag}: redispatches"
                );
                assert_eq!(eager.stats.bytes_out, event.stats.bytes_out, "{tag}: bytes_out");
                assert_eq!(eager.stats.bytes_back, event.stats.bytes_back, "{tag}: bytes_back");
                // comm_s never includes wall-measured pieces, so it is
                // bit-comparable even between separate runs.
                assert_eq!(
                    eager.stats.comm_s.to_bits(),
                    event.stats.comm_s.to_bits(),
                    "{tag}: comm_s diverged ({} vs {})",
                    eager.stats.comm_s,
                    event.stats.comm_s
                );
            }
        }
    }
}

#[test]
fn float_results_are_bit_identical_across_cores() {
    let xs: Vec<f64> = (0..3000).map(|i| (i as f64) * 0.125 + 0.3).collect();
    let run = |core: SimCore| {
        let rt = Triolet::new(
            ClusterConfig::virtual_cluster(5, 2).with_faults(plans()[2]).with_sim_core(core),
        );
        rt.fold_reduce(from_vec(xs.clone()).par(), &(), || 0.0f64, |(), a, x| a + x, |a, b| a + b)
    };
    let eager = run(SimCore::Eager);
    let event = run(SimCore::Event);
    assert_eq!(
        eager.value.to_bits(),
        event.value.to_bits(),
        "float fold diverged across cores: {} vs {}",
        eager.value,
        event.value
    );
}

#[test]
fn sim_check_passes_across_modes_and_faults() {
    // Every dispatch here runs *both* cores and panics unless every span
    // bound, send time, and arrival agrees to the bit — the in-dispatch
    // form of the makespan-identity gate (cross-run makespans are not
    // comparable because node seconds are wall-measured per run).
    let xs: Vec<i64> = (0..2048).map(|i| (i * 13) % 257 - 128).collect();
    let expect: i64 = xs.iter().sum();
    for topo in [Topology::Linear, Topology::Tree] {
        for pipe in [PipelineMode::Barrier, PipelineMode::Streamed] {
            for plan in plans() {
                let rt = Triolet::new(
                    ClusterConfig::virtual_cluster(7, 2)
                        .with_topology(topo)
                        .with_pipeline(pipe)
                        .with_faults(plan)
                        .with_sim_check(true),
                );
                assert_eq!(sum_ints(&rt, &xs).value, expect, "{topo:?}/{pipe:?}");
            }
        }
    }
}

#[test]
fn event_core_completes_a_1024_rank_fold_reduce() {
    let nodes = 1024usize;
    let xs: Vec<i64> = (0..8192).map(|i| (i * 31) % 2003 - 1001).collect();
    let expect: i64 = xs.iter().sum();
    let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, 2).with_sim_check(true));
    let run = sum_ints(&rt, &xs);
    assert_eq!(run.value, expect);
    let stats = rt.cluster().stats();
    assert!(stats.sim_events() > 0, "the event core must have processed heap events");
    assert!(
        stats.sim_peak_heap() > 0 && stats.sim_peak_heap() < stats.sim_events(),
        "resident heap state ({}) must stay well under total events ({})",
        stats.sim_peak_heap(),
        stats.sim_events()
    );
}

#[test]
fn eager_core_is_still_selectable_and_heapless() {
    let xs: Vec<i64> = (0..512).collect();
    let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 2).with_sim_core(SimCore::Eager));
    assert_eq!(sum_ints(&rt, &xs).value, xs.iter().sum::<i64>());
    assert_eq!(rt.cluster().stats().sim_events(), 0, "the eager walk pops no heap events");
}

#[test]
fn hierarchical_cost_model_keeps_cores_in_lockstep() {
    // Heterogeneous link tiers change every edge duration; the cores must
    // still agree bitwise (sim_check) and the result must be exact.
    let xs: Vec<i64> = (0..4096).map(|i| (i * 7) % 499 - 249).collect();
    let expect: i64 = xs.iter().sum();
    let cost = CostModel::hierarchical(4, 5e-6, 4.0e9, 5e-5, 1.0e9);
    let rt =
        Triolet::new(ClusterConfig::virtual_cluster(16, 2).with_cost(cost).with_sim_check(true));
    let run = sum_ints(&rt, &xs);
    assert_eq!(run.value, expect);
    assert!(run.stats.comm_s > 0.0);
}
