//! Job-service gates: admission control, deterministic policy scheduling,
//! per-tenant accounting, tenant-tagged traces, and solo-vs-service result
//! identity under a seeded fault plan with a crashed rank.

use std::time::Duration;

use triolet::prelude::*;
use triolet::service::percentile;
use triolet::TrafficSnapshot;

fn config(nodes: usize, threads: usize) -> ClusterConfig {
    ClusterConfig::virtual_cluster(nodes, threads)
}

/// A deterministic mixed workload job: dot-product fold against a small
/// broadcast environment, returning the value's bits for exact comparison.
fn dot_job(size: usize, seed: u64) -> impl FnOnce(&Triolet) -> Run<u64> + Send + 'static {
    move |rt: &Triolet| {
        let env: Vec<f64> = (0..64).map(|i| (i as f64) * 0.5 - 1.0).collect();
        let xs: Vec<f64> =
            (0..size).map(|i| ((i as u64).wrapping_mul(seed) % 4093) as f64 * 0.125).collect();
        rt.fold_reduce(
            from_vec(xs).par(),
            &env,
            || 0.0f64,
            |env, acc: f64, x: f64| acc + x * env[(x as usize) % env.len()],
            |a, b| a + b,
        )
        .map(f64::to_bits)
    }
}

#[test]
fn service_results_match_solo_runs_under_faults() {
    // Seeded lossy plan with a crashed middle rank: the service must not
    // perturb any job's result — dispatch decisions are pure functions of
    // per-call inputs, so interleaving through the shared cluster is
    // invisible to values.
    let plan = FaultPlan::seeded(2024)
        .with_drop(0.15)
        .with_duplication(0.05)
        .with_timeout(Duration::from_millis(1))
        .with_crash(2);
    let cfg = config(5, 2).with_faults(plan);
    let svc = Triolet::new(cfg).into_service(
        ServiceConfig::new(SchedPolicy::FairShare { weights: vec![1.0, 4.0] }).with_queue_cap(32),
    );
    let jobs: Vec<(u32, usize, u64)> =
        (0..10).map(|i| ((i % 2) as u32, 200 + 37 * i, 11 + i as u64)).collect();
    let handles: Vec<_> = jobs
        .iter()
        .map(|&(t, size, seed)| {
            svc.submit(Tenant(t), size as f64, dot_job(size, seed)).expect("admitted")
        })
        .collect();
    svc.drain();
    for (handle, &(_, size, seed)) in handles.into_iter().zip(&jobs) {
        let out = svc.wait(handle);
        let solo = dot_job(size, seed)(&Triolet::new(cfg));
        assert_eq!(out.value, solo.value, "service job diverged from solo run");
        assert_eq!(out.report.stats.messages, solo.stats.messages);
        assert_eq!(out.report.stats.retries, solo.stats.retries);
        assert_eq!(out.report.stats.redispatches, solo.stats.redispatches);
        assert_eq!(out.report.stats.bytes_out, solo.stats.bytes_out);
        assert_eq!(out.report.stats.bytes_back, solo.stats.bytes_back);
        assert!(out.report.stats.redispatches > 0, "crashed rank must force redispatches");
    }
}

#[test]
fn schedule_is_deterministic_across_service_instances() {
    let scenario = |policy: SchedPolicy| {
        let svc =
            Triolet::new(config(4, 2)).into_service(ServiceConfig::new(policy).with_queue_cap(64));
        for i in 0..24u64 {
            let tenant = Tenant((i % 3) as u32);
            let size = 100 + (i % 5) as usize * 50;
            svc.submit(tenant, size as f64, dot_job(size, i)).expect("admitted");
        }
        svc.drain();
        svc.completion_order()
    };
    for policy in [
        SchedPolicy::Fifo,
        SchedPolicy::FairShare { weights: vec![1.0, 2.0, 4.0] },
        SchedPolicy::Priority { levels: vec![2, 0, 1] },
    ] {
        let a = scenario(policy.clone());
        let b = scenario(policy.clone());
        assert_eq!(a, b, "schedule must be bit-identical under {policy:?}");
    }
}

#[test]
fn per_tenant_traffic_partitions_cluster_totals() {
    let svc = Triolet::new(config(4, 2))
        .into_service(ServiceConfig::new(SchedPolicy::Fifo).with_queue_cap(64));
    for i in 0..12u64 {
        svc.submit(Tenant((i % 3) as u32), 1.0, dot_job(150 + 10 * i as usize, i))
            .expect("admitted");
    }
    svc.drain();
    let usage = svc.usage();
    let summed = usage.iter().fold(TrafficSnapshot::default(), |acc, u| acc.plus(&u.traffic));
    let cluster = svc.runtime().cluster().stats().snapshot();
    assert_eq!(summed.messages, cluster.messages, "tenant messages must partition the total");
    assert_eq!(summed.bytes, cluster.bytes, "tenant bytes must partition the total");
    assert_eq!(summed.env_packs, cluster.env_packs);
    for u in &usage {
        assert_eq!(u.completed, 4);
        assert!(u.traffic.messages > 0);
        assert!(u.busy_s > 0.0);
    }
}

#[test]
fn fair_share_holds_cost_shares_to_configured_weights() {
    // 3 tenants, weights 1:2:4, quotas proportional to weight, unit sizes:
    // while every tenant is backlogged the stride schedule must keep each
    // tenant's completed-cost share within one job granule of its weight.
    let weights = [1.0, 2.0, 4.0];
    let svc = Triolet::new(config(4, 2)).into_service(
        ServiceConfig::new(SchedPolicy::FairShare { weights: weights.to_vec() })
            .with_queue_cap(512),
    );
    let quota = [30usize, 60, 120];
    let mut submitted = [0usize; 3];
    loop {
        let mut any = false;
        for t in 0..3 {
            if submitted[t] < quota[t] {
                submitted[t] += 1;
                any = true;
                svc.submit(Tenant(t as u32), 1.0, dot_job(64, (t * 1000 + submitted[t]) as u64))
                    .expect("admitted");
            }
        }
        if !any {
            break;
        }
    }
    // Measure shares at the first moment any tenant's queue could drain:
    // after 3 * min-quota completions every tenant is still backlogged.
    for _ in 0..90 {
        svc.step().expect("queued work");
    }
    let usage = svc.usage();
    let total: f64 = usage.iter().map(|u| u.cost).sum();
    let weight_sum: f64 = weights.iter().sum();
    for u in &usage {
        let achieved = u.cost / total;
        let configured = weights[u.tenant.idx()] / weight_sum;
        let err = (achieved - configured).abs() / configured;
        assert!(
            err <= 0.10,
            "tenant {} share {achieved:.3} vs configured {configured:.3} (err {err:.3})",
            u.tenant.0
        );
    }
    svc.drain();
}

#[test]
fn priority_tenants_cut_the_queue() {
    let svc = Triolet::new(config(4, 2)).into_service(
        ServiceConfig::new(SchedPolicy::Priority { levels: vec![0, 3] }).with_queue_cap(128),
    );
    for i in 0..20u64 {
        svc.submit(Tenant((i % 2) as u32), 1.0, dot_job(100, i)).expect("admitted");
    }
    svc.drain();
    let usage = svc.usage();
    // Everything was queued up front, so the high level's worst completion
    // must beat the low level's best.
    let hi_p99 = usage[1].latency_percentile_s(0.99);
    let lo_p50 = usage[0].latency_percentile_s(0.50);
    assert!(
        hi_p99 < lo_p50,
        "priority tenant p99 {hi_p99:.6} must beat best-effort p50 {lo_p50:.6}"
    );
}

#[test]
fn traced_run_tags_every_job_span_with_its_tenant() {
    let svc = Triolet::new(config(3, 2).with_trace(true))
        .into_service(ServiceConfig::new(SchedPolicy::Fifo).with_queue_cap(4));
    let mut rejected = 0;
    for i in 0..8u64 {
        match svc.submit(Tenant((i % 2) as u32), 1.0, dot_job(80, i)) {
            Ok(_) => {}
            Err(AdmissionError::Saturated { cap }) => {
                assert_eq!(cap, 4);
                rejected += 1;
            }
        }
    }
    assert_eq!(rejected, 4, "queue of 4 must reject the second wave");
    svc.drain();
    let trace = svc.take_trace();
    assert_eq!(trace.count_spans("service:job"), 4);
    assert_eq!(trace.count_events("service:admit"), 4);
    assert_eq!(trace.count_events("service:reject"), 4);
    // Every span of the merged timeline (the jobs' own skeleton spans
    // included) carries the tenant attribution.
    let service_spans = trace.spans.iter().filter(|s| s.name == "service:job").count();
    assert!(service_spans > 0);
    for s in &trace.spans {
        assert!(s.args.iter().any(|(k, _)| *k == "tenant"), "span {} missing tenant tag", s.name);
    }
    // Jobs run back to back on the service clock: the k-th service:job
    // span starts where the (k-1)-th ended.
    let mut jobs: Vec<(f64, f64)> =
        trace.spans.iter().filter(|s| s.name == "service:job").map(|s| (s.t0, s.t1)).collect();
    jobs.sort_by(|a, b| a.0.total_cmp(&b.0));
    for pair in jobs.windows(2) {
        assert_eq!(pair[1].0.to_bits(), pair[0].1.to_bits(), "gapless gang schedule");
    }
}

#[test]
fn service_stats_aggregate_consistently() {
    let svc = Triolet::new(config(4, 2))
        .into_service(ServiceConfig::new(SchedPolicy::Fifo).with_queue_cap(64));
    for i in 0..9u64 {
        svc.submit(Tenant((i % 3) as u32), 1.0, dot_job(120, i)).expect("admitted");
    }
    svc.drain();
    let stats = svc.service_stats();
    let usage = svc.usage();
    assert_eq!(stats.completed, 9);
    assert_eq!(stats.queued, 0);
    // Gang scheduling: the clock is exactly the sum of job makespans.
    assert!((stats.now_s - stats.busy_s).abs() < 1e-12);
    let busy: f64 = usage.iter().map(|u| u.busy_s).sum();
    assert!((busy - stats.busy_s).abs() < 1e-9);
    let u = stats.utilization();
    assert!(u > 0.0 && u <= 1.0, "utilization {u} out of range");
    let lats: Vec<f64> = usage.iter().flat_map(|u| u.latencies_s.iter().copied()).collect();
    assert!(percentile(&lats, 0.5) <= percentile(&lats, 0.99));
}
