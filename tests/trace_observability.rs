//! End-to-end observability: traced runs must produce the documented span
//! hierarchy (skeleton → slice → dispatch → chunk → merge → unpack), the
//! chrome://tracing export must be valid JSON with those spans, recovery
//! work under a seeded fault plan must be visible as point events, and the
//! trace *structure* on a fixed cluster shape is pinned by a golden file.
//!
//! The golden file holds `TraceData::canonical_lines()` — category, name,
//! and track per span/event, no timestamps — so it is deterministic in
//! virtual mode and robust to cost-model retuning. Regenerate it after an
//! intentional structure change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --offline -p triolet-apps --test trace_observability
//! ```

use std::time::Duration;

use triolet::prelude::*;
use triolet_apps::tpacf;

fn traced_rt(nodes: usize, tpn: usize) -> Triolet {
    Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn).with_trace(true))
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/trace_sum_3x2.txt")
}

#[test]
fn golden_trace_structure_for_sum_on_3x2() {
    let xs: Vec<i64> = (0..600).collect();
    let run = traced_rt(3, 2).sum(from_vec(xs.clone()).par());
    assert_eq!(run.value, xs.iter().sum::<i64>());
    let got = run.trace.canonical_lines().join("\n") + "\n";

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want =
        std::fs::read_to_string(&path).expect("golden file missing — run with UPDATE_GOLDEN=1");
    assert_eq!(
        got, want,
        "trace structure changed; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn traced_run_replays_identically() {
    // Virtual time + seeded routing: two identical runs must produce the
    // exact same trace structure. (Timestamps are not compared: the root's
    // own slice/pack work is measured in wall-clock even in virtual mode.)
    let xs: Vec<i64> = (0..500).collect();
    let run = || traced_rt(4, 2).sum(from_vec(xs.clone()).par());
    let (a, b) = (run(), run());
    assert_eq!(a.trace.canonical_lines(), b.trace.canonical_lines());
    assert_eq!(a.trace.spans.len(), b.trace.spans.len());
    assert_eq!(a.trace.events.len(), b.trace.events.len());
}

#[test]
fn chrome_export_is_valid_json_with_the_span_hierarchy() {
    let run = traced_rt(3, 2).histogram(16, range(900).map(|i: usize| i % 16).par());
    let json = run.trace.to_chrome_json();
    let doc = triolet_obs::json::parse(&json).expect("chrome export must parse");
    let events = doc
        .get("traceEvents")
        .and_then(triolet_obs::json::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let span_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(triolet_obs::json::Value::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(triolet_obs::json::Value::as_str))
        .collect();
    for required in ["skeleton:histogram", "root:slice", "node:task", "chunk", "merge"] {
        assert!(span_names.contains(&required), "missing span {required:?} in {span_names:?}");
    }
}

#[test]
fn fault_recovery_is_visible_in_the_trace() {
    // The fault-tolerance gate's plan (seed 2024, ~15% drops, rank 1 down)
    // must surface as retry and redispatch point events, agreeing with the
    // RunStats counters the recovery path already maintains.
    let plan = FaultPlan::seeded(2024)
        .with_drop(0.15)
        .with_crash(1)
        .with_timeout(Duration::from_millis(1));
    let cfg = ClusterConfig::virtual_cluster(4, 2).with_faults(plan).with_trace(true);
    let xs: Vec<i64> = (0..4096).map(|i| (i * 37) % 1001 - 500).collect();
    let run = Triolet::new(cfg).sum(from_vec(xs.clone()).par());
    assert_eq!(run.value, xs.iter().sum::<i64>());

    assert!(run.stats.retries > 0 && run.stats.redispatches > 0, "plan must force recovery");
    assert_eq!(run.trace.count_events("retry"), run.stats.retries as usize);
    assert_eq!(run.trace.count_events("redispatch"), run.stats.redispatches as usize);
    assert!(run.trace.count_events("drop") > 0, "dropped attempts must be marked");
}

#[test]
fn multi_phase_app_concatenates_skeleton_spans() {
    // tpacf runs four skeletons back to back (dd, the rand scatter, rr,
    // dr); the combined trace must hold all four skeleton spans in time
    // order.
    let input = tpacf::generate(24, 3, 8, 5);
    let rt = traced_rt(3, 2);
    let run = tpacf::run_triolet(&rt, &input);
    let names = run.trace.span_names();
    assert!(names.contains(&"skeleton:histogram"), "dd phase span missing: {names:?}");
    assert!(names.contains(&"skeleton:scatter"), "rand scatter span missing: {names:?}");
    assert!(names.contains(&"skeleton:fold_reduce"), "rr/dr phase spans missing: {names:?}");

    let skeletons: Vec<_> = run.trace.spans.iter().filter(|s| s.cat == "skeleton").collect();
    assert_eq!(skeletons.len(), 4, "four phases -> four skeleton spans");
    for pair in skeletons.windows(2) {
        assert!(pair[0].t1 <= pair[1].t0 + 1e-12, "phases must not overlap in the timeline");
    }
}

#[test]
fn untraced_runs_stay_empty_even_under_faults() {
    let plan = FaultPlan::seeded(2024)
        .with_drop(0.15)
        .with_crash(1)
        .with_timeout(Duration::from_millis(1));
    let cfg = ClusterConfig::virtual_cluster(4, 2).with_faults(plan);
    let xs: Vec<i64> = (0..4096).map(|i| (i * 37) % 1001 - 500).collect();
    let run = Triolet::new(cfg).sum(from_vec(xs).par());
    assert!(run.trace.is_empty(), "tracing off must record nothing");
    assert!(run.stats.retries > 0, "faults still happen, they are just not traced");
}
