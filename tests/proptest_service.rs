//! Property-based tenancy isolation: any interleaving of N tenants' jobs
//! through the shared [`JobService`] — under FairShare or Priority, across
//! topologies, pipeline modes, and seeded fault plans including crashed
//! ranks — yields per-job results bit-identical to running each job alone
//! on an identically configured cluster. Values and traffic accounting are
//! order-independent; only wall-measured timings may differ, so those are
//! deliberately not compared. The schedule itself must also be
//! deterministic: two identical services complete jobs in the same order.

use std::time::Duration;

use proptest::prelude::*;
use triolet::prelude::*;

#[derive(Debug, Clone, Copy)]
enum PlanKind {
    None,
    Lossy,
    Crashy,
}

fn plan_for(kind: PlanKind, seed: u64, nodes: usize) -> FaultPlan {
    match kind {
        PlanKind::None => FaultPlan::none(),
        PlanKind::Lossy => FaultPlan::seeded(seed)
            .with_drop(0.2)
            .with_duplication(0.1)
            .with_corruption(0.05)
            .with_timeout(Duration::from_millis(1)),
        PlanKind::Crashy => {
            let plan =
                FaultPlan::seeded(seed).with_drop(0.15).with_timeout(Duration::from_millis(1));
            if nodes >= 2 {
                plan.with_crash(nodes / 2)
            } else {
                plan
            }
        }
    }
}

/// The shimmed proptest has no `prop_oneof`; pick enums from an integer.
fn topology_from(sel: u64) -> Topology {
    if sel % 2 == 0 {
        Topology::Linear
    } else {
        Topology::Tree
    }
}

fn pipeline_from(sel: u64) -> PipelineMode {
    if sel % 2 == 0 {
        PipelineMode::Barrier
    } else {
        PipelineMode::Streamed
    }
}

fn plan_kind_from(sel: u64) -> PlanKind {
    match sel % 3 {
        0 => PlanKind::None,
        1 => PlanKind::Lossy,
        _ => PlanKind::Crashy,
    }
}

fn policy_from(sel: u64, tenants: usize) -> SchedPolicy {
    if sel % 2 == 0 {
        SchedPolicy::FairShare { weights: (0..tenants).map(|t| (t + 1) as f64).collect() }
    } else {
        SchedPolicy::Priority { levels: (0..tenants as u32).rev().collect() }
    }
}

/// One job's deterministic recipe. `kind` selects among skeletons with
/// different dispatch shapes; the result is normalized to value bits.
#[derive(Debug, Clone, Copy)]
struct JobSpec {
    tenant: u32,
    kind: u64,
    size: usize,
    seed: u64,
}

fn run_spec(rt: &Triolet, spec: JobSpec) -> Run<Vec<u64>> {
    let xs: Vec<f64> = (0..spec.size)
        .map(|i| ((i as u64).wrapping_mul(spec.seed | 1) % 4093) as f64 * 0.125 - 64.0)
        .collect();
    match spec.kind % 3 {
        0 => rt.sum(from_vec(xs).par()).map(|v| vec![v.to_bits()]),
        1 => {
            let env: Vec<f64> = (0..32).map(|i| (i as f64) * 0.5 - 1.0).collect();
            rt.fold_reduce(
                from_vec(xs).par(),
                &env,
                || 0.0f64,
                |env, acc: f64, x: f64| acc + x * env[(x.abs() as usize) % env.len()],
                |a, b| a + b,
            )
            .map(|v| vec![v.to_bits()])
        }
        _ => rt.histogram(8, from_vec(xs).map(|x: f64| (x.abs() as usize) % 8).par()),
    }
}

fn specs_for(tenants: usize, jobs: usize, seed: u64) -> Vec<JobSpec> {
    (0..jobs)
        .map(|j| JobSpec {
            tenant: (j % tenants) as u32,
            kind: seed.wrapping_add(j as u64).wrapping_mul(0x9e37_79b9),
            size: 40 + (j * 31) % 300,
            seed: seed.wrapping_add(j as u64 * 7919),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn service_jobs_are_bit_identical_to_solo_runs(
        (nodes, tpn) in (2usize..=8, 1usize..=3),
        tenants in 1usize..=4,
        jobs in 1usize..=12,
        topo_sel in 0u64..2,
        pipe_sel in 0u64..2,
        kind_sel in 0u64..3,
        policy_sel in 0u64..2,
        seed in 0u64..1_000,
    ) {
        let cfg = ClusterConfig::virtual_cluster(nodes, tpn)
            .with_topology(topology_from(topo_sel))
            .with_pipeline(pipeline_from(pipe_sel))
            .with_faults(plan_for(plan_kind_from(kind_sel), seed, nodes));
        let specs = specs_for(tenants, jobs, seed);

        let svc = Triolet::new(cfg).into_service(
            ServiceConfig::new(policy_from(policy_sel, tenants)).with_queue_cap(jobs.max(1)),
        );
        let handles: Vec<_> = specs
            .iter()
            .map(|&spec| {
                svc.submit(Tenant(spec.tenant), spec.size as f64, move |rt: &Triolet| {
                    run_spec(rt, spec)
                })
                .expect("queue sized to hold every job")
            })
            .collect();
        svc.drain();

        for (handle, &spec) in handles.into_iter().zip(&specs) {
            let out = svc.wait(handle);
            // Solo baseline: a fresh, identically configured cluster
            // running only this job. Values and traffic counters are pure
            // functions of (config, job); the service's interleaving must
            // not leak into either.
            let solo = run_spec(&Triolet::new(cfg), spec);
            prop_assert_eq!(&out.value, &solo.value, "value diverged for {:?}", spec);
            prop_assert_eq!(out.report.stats.messages, solo.stats.messages);
            prop_assert_eq!(out.report.stats.retries, solo.stats.retries);
            prop_assert_eq!(out.report.stats.redispatches, solo.stats.redispatches);
            prop_assert_eq!(out.report.stats.bytes_out, solo.stats.bytes_out);
            prop_assert_eq!(out.report.stats.bytes_back, solo.stats.bytes_back);
            prop_assert_eq!(out.report.tenant, Tenant(spec.tenant));
        }
    }

    #[test]
    fn identical_services_complete_in_identical_order(
        (nodes, tpn) in (2usize..=6, 1usize..=2),
        tenants in 1usize..=4,
        jobs in 1usize..=16,
        policy_sel in 0u64..2,
        kind_sel in 0u64..3,
        seed in 0u64..1_000,
    ) {
        let cfg = ClusterConfig::virtual_cluster(nodes, tpn)
            .with_faults(plan_for(plan_kind_from(kind_sel), seed, nodes));
        let specs = specs_for(tenants, jobs, seed);
        let run_service = || {
            let svc = Triolet::new(cfg).into_service(
                ServiceConfig::new(policy_from(policy_sel, tenants))
                    .with_queue_cap(jobs.max(1)),
            );
            for &spec in &specs {
                svc.submit(Tenant(spec.tenant), spec.size as f64, move |rt: &Triolet| {
                    run_spec(rt, spec)
                })
                .expect("queue sized to hold every job");
            }
            svc.drain();
            svc.completion_order()
        };
        prop_assert_eq!(run_service(), run_service(), "schedule must be deterministic");
    }
}
