//! End-to-end gate for the tree collectives + pack-once environment work:
//!
//! * the broadcast environment is serialized exactly once per skeleton call,
//!   regardless of node count (the pack-once cache);
//! * a pre-packed environment is reused — not re-serialized — across
//!   consecutive skeleton calls (tpacf's multi-phase pattern);
//! * `Topology::Linear` and `Topology::Tree` produce bit-identical results,
//!   with and without a seeded fault schedule;
//! * at 8 nodes the tree broadcast's modeled makespan beats the linear one.

use triolet::prelude::*;

const TPN: usize = 2;

/// A broadcast environment big enough that its transport dominates the
/// virtual-time makespan.
fn big_env() -> Vec<f64> {
    (0..100_000).map(|i| (i as f64) * 0.5 - 1.0).collect()
}

fn weighted_sum(rt: &Triolet, xs: Vec<f64>, env: &Vec<f64>) -> Run<f64> {
    rt.fold_reduce(
        from_vec(xs).par(),
        env,
        || 0.0f64,
        |env, acc, x: f64| acc + x * env[(x as usize) % env.len()],
        |a, b| a + b,
    )
}

#[test]
fn environment_packs_once_regardless_of_node_count() {
    let xs: Vec<f64> = (0..512).map(|i| i as f64).collect();
    let env: Vec<f64> = (0..64).map(|i| i as f64 * 0.25).collect();
    for nodes in [2, 4, 8, 16] {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, TPN));
        let run = weighted_sum(&rt, xs.clone(), &env);
        assert!(run.value.is_finite());
        assert_eq!(
            rt.cluster().stats().env_packs(),
            1,
            "env must pack exactly once at {nodes} nodes, not once per node"
        );
    }
}

#[test]
fn packed_environment_is_reused_across_calls() {
    let xs: Vec<f64> = (0..512).map(|i| i as f64).collect();
    let env: Vec<f64> = (0..64).map(|i| i as f64 * 0.25).collect();
    let rt = Triolet::new(ClusterConfig::virtual_cluster(4, TPN));
    let packed = rt.pack_env(env);
    for _phase in 0..3 {
        let run = rt.fold_reduce(
            from_vec(xs.clone()).par(),
            &packed,
            || 0.0f64,
            |env, acc, x: f64| acc + x * env[(x as usize) % env.len()],
            |a, b| a + b,
        );
        assert!(run.value.is_finite());
    }
    assert_eq!(
        rt.cluster().stats().env_packs(),
        1,
        "three skeleton calls over one packed env must serialize it once"
    );
}

#[test]
fn unit_environment_still_packs_nothing() {
    let xs: Vec<i64> = (0..1024).collect();
    let rt = Triolet::new(ClusterConfig::virtual_cluster(4, TPN));
    let run = rt.sum(from_vec(xs).par());
    assert_eq!(run.value, 1024 * 1023 / 2);
    assert_eq!(rt.cluster().stats().env_packs(), 0, "a unit env has no bytes to pack");
}

#[test]
fn linear_and_tree_topologies_are_bit_identical() {
    let xs: Vec<f64> = (0..4096).map(|i| (i as f64) * 0.125 + 0.3).collect();
    let env = big_env();
    let run_with = |topology| {
        let cfg = ClusterConfig::virtual_cluster(8, TPN).with_topology(topology);
        let rt = Triolet::new(cfg);
        weighted_sum(&rt, xs.clone(), &env)
    };
    let linear = run_with(Topology::Linear);
    let tree = run_with(Topology::Tree);
    assert_eq!(
        linear.value.to_bits(),
        tree.value.to_bits(),
        "the routing topology must never change the computed value"
    );
}

#[test]
fn topologies_agree_under_a_seeded_fault_schedule() {
    let xs: Vec<f64> = (0..4096).map(|i| (i as f64) * 0.125 + 0.3).collect();
    let env = big_env();
    let plan = FaultPlan::seeded(77).with_drop(0.15);
    let run_with = |topology| {
        let cfg = ClusterConfig::virtual_cluster(8, TPN).with_topology(topology).with_faults(plan);
        let rt = Triolet::new(cfg);
        weighted_sum(&rt, xs.clone(), &env)
    };
    let linear = run_with(Topology::Linear);
    let tree = run_with(Topology::Tree);
    assert_eq!(linear.value.to_bits(), tree.value.to_bits());
    assert!(linear.stats.retries > 0, "the schedule must actually bite");
    assert!(tree.stats.retries > 0);
}

#[test]
fn tree_broadcast_beats_linear_at_eight_nodes() {
    let xs: Vec<f64> = (0..256).map(|i| i as f64).collect();
    let env = big_env();
    let run_with = |topology| {
        let cfg = ClusterConfig::virtual_cluster(8, TPN).with_topology(topology);
        let rt = Triolet::new(cfg);
        weighted_sum(&rt, xs.clone(), &env)
    };
    let linear = run_with(Topology::Linear);
    let tree = run_with(Topology::Tree);
    assert!(
        tree.stats.total_s < linear.stats.total_s,
        "tree broadcast must shorten the 8-node makespan: tree {} s vs linear {} s",
        tree.stats.total_s,
        linear.stats.total_s
    );
}
