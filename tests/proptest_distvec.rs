//! Property-based gate for resident execution: for random data, random
//! cluster shapes, either topology, either pipeline mode, and seeded fault
//! schedules (including whole-rank crashes that force resident segments to
//! re-ship), a skeleton over a resident `DistVec` must be **bit-identical**
//! to the same skeleton over a re-broadcast iterator.

use std::time::Duration;

use proptest::prelude::*;
use triolet::prelude::*;

fn cluster_shapes() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=8, 1usize..=4)
}

/// The shimmed proptest has no `prop_oneof`; decode a selector integer:
/// bit 0 picks the topology, bit 1 the pipeline mode.
fn shape_from(sel: u64) -> (Topology, PipelineMode) {
    let topology = if sel & 1 == 0 { Topology::Linear } else { Topology::Tree };
    let pipeline = if sel & 2 == 0 { PipelineMode::Barrier } else { PipelineMode::Streamed };
    (topology, pipeline)
}

/// `None` => fault-free; `Some((seed, crash))` => seeded drops plus an
/// optional whole-rank crash (crash rank 0 is the root's own node and the
/// redispatch target of last resort, so crashes hit ranks 1+).
fn fault_plans() -> impl Strategy<Value = Option<(u64, Option<usize>)>> {
    proptest::option::of((0u64..1000, proptest::option::of(1usize..8)))
}

fn config(
    nodes: usize,
    tpn: usize,
    topology: Topology,
    pipeline: PipelineMode,
    faults: &Option<(u64, Option<usize>)>,
) -> ClusterConfig {
    let mut cfg =
        ClusterConfig::virtual_cluster(nodes, tpn).with_topology(topology).with_pipeline(pipeline);
    if let Some((seed, crash)) = faults {
        let mut plan =
            FaultPlan::seeded(*seed).with_drop(0.12).with_timeout(Duration::from_millis(1));
        if let Some(rank) = crash {
            if *rank < nodes {
                plan = plan.with_crash(*rank);
            }
        }
        cfg = cfg.with_faults(plan);
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// f64 sums: addition is not associative in floating point, so bit
    /// equality here proves resident chunking replays the iterator
    /// chunking exactly.
    #[test]
    fn resident_f64_fold_is_bit_identical(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..400),
        (nodes, tpn) in cluster_shapes(),
        sel in 0u64..4,
        faults in fault_plans(),
    ) {
        let (topology, pipeline) = shape_from(sel);
        let rt = Triolet::new(config(nodes, tpn, topology, pipeline, &faults));
        let fold = |input: DistInputOf<f64>, rt: &Triolet| {
            match input {
                DistInputOf::Resident(dv) => rt.fold_reduce(
                    &dv, &(), || 0.0f64, |(), a, x: f64| a + x * 0.5 + 1.0, |a, b| a + b,
                ),
                DistInputOf::Iter(xs) => rt.fold_reduce(
                    from_vec(xs).par(), &(), || 0.0f64, |(), a, x: f64| a + x * 0.5 + 1.0,
                    |a, b| a + b,
                ),
            }
        };
        let dv = rt.scatter(xs.clone()).value;
        let resident = fold(DistInputOf::Resident(dv), &rt);
        let rebroadcast = fold(DistInputOf::Iter(xs), &rt);
        prop_assert_eq!(resident.value.to_bits(), rebroadcast.value.to_bits());
        if faults.is_none() {
            prop_assert_eq!(resident.stats.bytes_out, 0);
            prop_assert_eq!(resident.stats.resident_misses, 0);
        }
    }

    /// A non-commutative merge (list concatenation): resident execution
    /// must preserve global element order exactly, even when a crashed
    /// rank forces its segment to re-ship and re-run elsewhere.
    #[test]
    fn resident_concat_fold_preserves_order(
        xs in proptest::collection::vec(any::<u32>(), 1..300),
        (nodes, tpn) in cluster_shapes(),
        sel in 0u64..4,
        faults in fault_plans(),
    ) {
        let (topology, pipeline) = shape_from(sel);
        let rt = Triolet::new(config(nodes, tpn, topology, pipeline, &faults));
        let concat = |rt: &Triolet, dv: &DistVec<u32>| {
            rt.fold_reduce(
                dv,
                &(),
                Vec::new,
                |(), mut acc: Vec<u32>, x: u32| { acc.push(x); acc },
                |mut a, mut b| { a.append(&mut b); a },
            )
        };
        let dv = rt.scatter(xs.clone()).value;
        let got = concat(&rt, &dv);
        prop_assert_eq!(got.value, xs);
    }

    /// build_vec over resident segments and views preserves order under
    /// every shape.
    #[test]
    fn resident_build_vec_matches_map(
        xs in proptest::collection::vec(any::<u32>(), 1..300),
        (nodes, tpn) in cluster_shapes(),
        sel in 0u64..4,
        faults in fault_plans(),
    ) {
        let (topology, pipeline) = shape_from(sel);
        let rt = Triolet::new(config(nodes, tpn, topology, pipeline, &faults));
        let dv = rt.scatter(xs.clone()).value;
        let got = rt.build_vec(&dv, &(), |_, x: u32| x as u64 * 3 + 1);
        let expect: Vec<u64> = xs.iter().map(|&x| x as u64 * 3 + 1).collect();
        prop_assert_eq!(got.value, expect);

        let lo = xs.len() / 4;
        let hi = xs.len() - xs.len() / 4;
        let got = rt.build_vec(dv.slice(lo..hi), &(), |_, x: u32| x as u64 + 9);
        let expect: Vec<u64> = xs[lo..hi].iter().map(|&x| x as u64 + 9).collect();
        prop_assert_eq!(got.value, expect);
    }
}

/// Helper enum so one closure body drives both arms (keeps the step
/// expressions textually identical, which is the point of the test).
enum DistInputOf<T> {
    Resident(DistVec<T>),
    Iter(Vec<T>),
}
