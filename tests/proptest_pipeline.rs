//! Property-based equivalence gate for the pipelined dispatch path: for
//! random cluster shapes, payload sizes, fault schedules, and topologies,
//! a streamed run and a barrier run of the same workload must produce
//! bit-identical values and identical traffic accounting. Streaming is a
//! scheduling change at the root; nothing observable may depend on it.

use std::time::Duration;

use proptest::prelude::*;
use triolet::prelude::*;

fn config(
    nodes: usize,
    tpn: usize,
    topology: Topology,
    faults: Option<FaultPlan>,
    mode: PipelineMode,
) -> ClusterConfig {
    let mut cfg =
        ClusterConfig::virtual_cluster(nodes, tpn).with_topology(topology).with_pipeline(mode);
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    cfg
}

/// Derive a fault schedule from a case seed: a third of cases run clean, a
/// third with lossy links, a third with a lossy link plus a crashed rank
/// (forcing mid-stream redispatch). Single-node clusters cannot survive a
/// crash of their only rank, so they stay at lossy.
fn plan_for(seed: u64, nodes: usize) -> Option<FaultPlan> {
    match seed % 3 {
        0 => None,
        1 => Some(FaultPlan::seeded(seed).with_drop(0.15).with_timeout(Duration::from_millis(1))),
        _ if nodes > 1 => Some(
            FaultPlan::seeded(seed)
                .with_drop(0.1)
                .with_crash((seed as usize) % nodes)
                .with_timeout(Duration::from_millis(1)),
        ),
        _ => Some(FaultPlan::seeded(seed).with_drop(0.1).with_timeout(Duration::from_millis(1))),
    }
}

/// The shimmed proptest has no `prop_oneof`; pick a topology from a range.
fn topology_from(sel: u64) -> Topology {
    if sel % 2 == 0 {
        Topology::Linear
    } else {
        Topology::Tree
    }
}

fn assert_same_traffic(a: &RunStats, b: &RunStats) {
    assert_eq!(a.bytes_out, b.bytes_out);
    assert_eq!(a.bytes_back, b.bytes_back);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.redispatches, b.redispatches);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn float_sum_agrees_across_modes(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..600),
        nodes in 1usize..10,
        tpn in 1usize..4,
        topo_sel in 0u64..2,
        seed in 0u64..1000,
    ) {
        let plan = plan_for(seed, nodes);
        let run = |mode| {
            Triolet::new(config(nodes, tpn, topology_from(topo_sel), plan, mode))
                .sum(from_vec(xs.clone()).par())
        };
        let s = run(PipelineMode::Streamed);
        let b = run(PipelineMode::Barrier);
        prop_assert_eq!(s.value.to_bits(), b.value.to_bits());
        assert_same_traffic(&s.stats, &b.stats);
    }

    #[test]
    fn non_commutative_concat_agrees_across_modes(
        xs in proptest::collection::vec(any::<u16>(), 0..500),
        nodes in 1usize..10,
        tpn in 1usize..4,
        topo_sel in 0u64..2,
        plan_seed in proptest::option::of(0u64..1000),
    ) {
        // Vec concatenation is non-commutative: any deviation from the
        // fixed task-order fold scrambles the result.
        let plan = plan_seed.and_then(|seed| plan_for(seed, nodes));
        let run = |mode| {
            Triolet::new(config(nodes, tpn, topology_from(topo_sel), plan, mode)).fold_reduce(
                from_vec(xs.clone()).par(),
                &(),
                Vec::new,
                |(), mut acc: Vec<u16>, x: u16| { acc.push(x); acc },
                |mut a, b| { a.extend(b); a },
            )
        };
        let s = run(PipelineMode::Streamed);
        let b = run(PipelineMode::Barrier);
        prop_assert_eq!(&s.value, &b.value);
        let expect: Vec<u16> = xs.clone();
        prop_assert_eq!(&s.value, &expect);
        assert_same_traffic(&s.stats, &b.stats);
    }

    #[test]
    fn build_vec_payload_sizes_agree_across_modes(
        n in 0usize..3000,
        width in 1usize..16,
        nodes in 1usize..10,
        tpn in 1usize..4,
        topo_sel in 0u64..2,
    ) {
        // Payload size per task varies with `width`; the streamed unpack
        // must reassemble fragments in task order regardless.
        let xs: Vec<u64> = (0..n as u64).collect();
        let run = |mode| {
            Triolet::new(config(nodes, tpn, topology_from(topo_sel), None, mode)).build_vec(
                from_vec(xs.clone())
                    .concat_map(move |x: u64| triolet::StepFlat::new(0..(x % width as u64)))
                    .par(),
                &(),
                |_, x| x,
            )
        };
        let s = run(PipelineMode::Streamed);
        let b = run(PipelineMode::Barrier);
        prop_assert_eq!(&s.value, &b.value);
        assert_same_traffic(&s.stats, &b.stats);
    }

    #[test]
    fn crashed_rank_redispatch_agrees_across_modes(
        xs in proptest::collection::vec(-1000i64..1000, 1..500),
        nodes in 2usize..10,
        dead_seed in 0u64..1000,
    ) {
        let plan = FaultPlan::seeded(dead_seed)
            .with_crash((dead_seed as usize) % nodes)
            .with_timeout(Duration::from_millis(1));
        let run = |mode| {
            Triolet::new(config(nodes, 2, Topology::Linear, Some(plan), mode))
                .sum(from_vec(xs.clone()).par())
        };
        let s = run(PipelineMode::Streamed);
        let b = run(PipelineMode::Barrier);
        let expect: i64 = xs.iter().sum();
        prop_assert_eq!(s.value, expect);
        prop_assert_eq!(b.value, expect);
        assert_same_traffic(&s.stats, &b.stats);
    }
}
